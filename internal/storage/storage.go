// Package storage models the storage subsystem of the composable host:
// NVMe solid-state devices (locally attached or Falcon-attached) and the
// slower general-purpose store the baseline configurations use, plus the
// host page cache that makes re-read epochs cheap.
package storage

import (
	"fmt"
	"time"

	"composable/internal/fabric"
	"composable/internal/hostcpu"
	"composable/internal/sim"
	"composable/internal/units"
)

// Spec describes a storage product's media characteristics.
type Spec struct {
	Name       string
	Capacity   units.Bytes
	SeqRead    units.BytesPerSec // large sequential reads
	RandRead   units.BytesPerSec // ~128 KB random reads (dataset shuffling)
	Write      units.BytesPerSec // sequential writes (checkpoints)
	Latency    time.Duration     // per-request access latency
	QueueSlots int               // concurrent outstanding requests
}

// Catalog entries.
var (
	// IntelNVMe4TB is the Intel SSDPEDKX040T7 used both locally attached
	// and in the Falcon drawer.
	IntelNVMe4TB = Spec{
		Name:       "Intel SSDPEDKX040T7 4TB NVMe",
		Capacity:   4 * units.TB,
		SeqRead:    units.GBps(3.2),
		RandRead:   units.GBps(2.6),
		Write:      units.GBps(2.2),
		Latency:    80 * time.Microsecond,
		QueueSlots: 32,
	}
	// BaselineStore is the hosts' general-purpose local storage used by
	// the localGPUs/hybridGPUs/falconGPUs configurations of Table III
	// ("local storage"): a SATA-class array that keeps sequential
	// streaming adequate but is markedly slower for the shuffled random
	// reads and checkpoint writes DL training issues.
	BaselineStore = Spec{
		Name:       "local storage (SATA-class array)",
		Capacity:   8 * units.TB,
		SeqRead:    units.GBps(1.4),
		RandRead:   units.GBps(0.25),
		Write:      units.GBps(0.45),
		Latency:    450 * time.Microsecond,
		QueueSlots: 8,
	}
)

// Device is a storage device placed in the fabric.
type Device struct {
	Spec Spec
	Node fabric.NodeID
	// Falcon reports whether the device is chassis-attached (its I/O
	// traverses the drawer switch and host adapter).
	Falcon bool

	env   *sim.Env
	net   *fabric.Network
	queue *sim.Resource

	bytesRead    units.Bytes
	bytesWritten units.Bytes
}

// New creates a device bound to a fabric node.
func New(env *sim.Env, net *fabric.Network, spec Spec, node fabric.NodeID, falcon bool) *Device {
	return &Device{
		Spec: spec, Node: node, Falcon: falcon,
		env: env, net: net,
		queue: sim.NewResource("storage.queue", spec.QueueSlots),
	}
}

// Read transfers size bytes from the device into host memory at mem,
// blocking until complete. random selects the random-read media rate.
func (d *Device) Read(p *sim.Proc, mem fabric.NodeID, size units.Bytes, random bool) error {
	if size <= 0 {
		return nil
	}
	rate := d.Spec.SeqRead
	if random {
		rate = d.Spec.RandRead
	}
	d.queue.Acquire(p, 1)
	p.Sleep(d.Spec.Latency)
	err := d.net.TransferLimited(p, d.Node, mem, size, rate)
	d.queue.Release(d.env, 1)
	if err != nil {
		return fmt.Errorf("storage read: %w", err)
	}
	d.bytesRead += size
	return nil
}

// Write transfers size bytes from host memory at mem onto the device,
// blocking until complete (checkpoints, logs).
func (d *Device) Write(p *sim.Proc, mem fabric.NodeID, size units.Bytes) error {
	if size <= 0 {
		return nil
	}
	d.queue.Acquire(p, 1)
	p.Sleep(d.Spec.Latency)
	err := d.net.TransferLimited(p, mem, d.Node, size, d.Spec.Write)
	d.queue.Release(d.env, 1)
	if err != nil {
		return fmt.Errorf("storage write: %w", err)
	}
	d.bytesWritten += size
	return nil
}

// BytesRead returns the cumulative bytes read from the device.
func (d *Device) BytesRead() units.Bytes { return d.bytesRead }

// BytesWritten returns the cumulative bytes written to the device.
func (d *Device) BytesWritten() units.Bytes { return d.bytesWritten }

// PageCache models the kernel page cache over dataset files: the first
// epoch's reads go to the device; once a dataset is fully resident,
// subsequent epochs are served from host memory. Residency charges the
// host-memory accountant, so datasets larger than free host memory
// never become fully resident.
type PageCache struct {
	host         *hostcpu.Host
	resident     map[string]units.Bytes
	capacityUsed units.Bytes
}

// NewPageCache creates an empty cache charging host.
func NewPageCache(host *hostcpu.Host) *PageCache {
	return &PageCache{host: host, resident: make(map[string]units.Bytes)}
}

// CachedBytes returns how much of the keyed dataset is resident.
func (c *PageCache) CachedBytes(key string) units.Bytes { return c.resident[key] }

// Admit records that n more bytes of the keyed dataset are resident,
// up to limit (the dataset size). Admission silently stops when host
// memory is exhausted, exactly like a real page cache under pressure.
func (c *PageCache) Admit(key string, n, limit units.Bytes) {
	cur := c.resident[key]
	if cur >= limit {
		return
	}
	if cur+n > limit {
		n = limit - cur
	}
	if err := c.host.AllocMem(n); err != nil {
		return // memory pressure: stop caching
	}
	c.resident[key] = cur + n
	c.capacityUsed += n
}

// Drop evicts the keyed dataset from the cache.
func (c *PageCache) Drop(key string) {
	n := c.resident[key]
	if n > 0 {
		c.host.FreeMem(n)
		c.capacityUsed -= n
		delete(c.resident, key)
	}
}
