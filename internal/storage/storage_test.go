package storage

import (
	"testing"
	"time"

	"composable/internal/fabric"
	"composable/internal/hostcpu"
	"composable/internal/sim"
	"composable/internal/units"
)

// rig builds dev --(4 GB/s link)-- rc --(100 GB/s)-- mem.
func rig(t *testing.T, spec Spec) (*sim.Env, *Device, fabric.NodeID) {
	t.Helper()
	env := sim.NewEnv()
	net := fabric.NewNetwork(env)
	devNode := net.AddNode("dev", fabric.KindNVMe)
	rc := net.AddNode("rc", fabric.KindRootComplex)
	mem := net.AddNode("mem", fabric.KindMemory)
	net.ConnectSym(devNode, rc, units.GBps(4), time.Microsecond, "PCI-e 3.0")
	net.ConnectSym(rc, mem, units.GBps(100), 300*time.Nanosecond, "SMP")
	return env, New(env, net, spec, devNode, false), mem
}

func TestSequentialReadRate(t *testing.T) {
	env, dev, mem := rig(t, IntelNVMe4TB)
	var took time.Duration
	env.Go("r", func(p *sim.Proc) {
		start := p.Now()
		if err := dev.Read(p, mem, 3200*units.MB, false); err != nil {
			t.Error(err)
		}
		took = p.Now() - start
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// ≈3.2 GiB at 3.2 GB/s media ≈ 1.05 s (+latency).
	want := time.Duration(float64(3200*units.MB) / 3.2e9 * float64(time.Second))
	if d := took - want; d < 0 || d > 5*time.Millisecond {
		t.Fatalf("seq read took %v, want ≈%v", took, want)
	}
	if dev.BytesRead() != 3200*units.MB {
		t.Fatalf("bytes read = %v", dev.BytesRead())
	}
}

func TestRandomSlowerThanSequential(t *testing.T) {
	measure := func(random bool) time.Duration {
		env, dev, mem := rig(t, BaselineStore)
		var took time.Duration
		env.Go("r", func(p *sim.Proc) {
			start := p.Now()
			_ = dev.Read(p, mem, units.GB, random)
			took = p.Now() - start
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return took
	}
	seq, rnd := measure(false), measure(true)
	if rnd <= seq {
		t.Fatalf("random (%v) should be slower than sequential (%v)", rnd, seq)
	}
	// Baseline store: 1.4 vs 0.25 GB/s → ≈5.6×.
	ratio := rnd.Seconds() / seq.Seconds()
	if ratio < 4.5 || ratio > 6.5 {
		t.Fatalf("random/seq ratio = %.1f, want ≈5.6", ratio)
	}
}

func TestWritesSlowerOnBaseline(t *testing.T) {
	env, dev, mem := rig(t, BaselineStore)
	var took time.Duration
	env.Go("w", func(p *sim.Proc) {
		start := p.Now()
		if err := dev.Write(p, mem, 450*units.MB); err != nil {
			t.Error(err)
		}
		took = p.Now() - start
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if took < time.Second || took > 1100*time.Millisecond {
		t.Fatalf("450MiB checkpoint at 0.45GB/s took %v, want ≈1.05s", took)
	}
	if dev.BytesWritten() != 450*units.MB {
		t.Fatalf("bytes written = %v", dev.BytesWritten())
	}
}

func TestQueueDepthLimitsConcurrency(t *testing.T) {
	spec := IntelNVMe4TB
	spec.QueueSlots = 1
	env, dev, mem := rig(t, spec)
	var last time.Duration
	for i := 0; i < 2; i++ {
		env.Go("r", func(p *sim.Proc) {
			_ = dev.Read(p, mem, 320*units.MB, false)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// QD1: the two reads serialize (≈105ms each + latency).
	if last < 200*time.Millisecond {
		t.Fatalf("QD1 reads overlapped: finished at %v", last)
	}
}

func TestZeroSizeIONoops(t *testing.T) {
	env, dev, mem := rig(t, IntelNVMe4TB)
	env.Go("r", func(p *sim.Proc) {
		if err := dev.Read(p, mem, 0, false); err != nil {
			t.Error(err)
		}
		if err := dev.Write(p, mem, 0); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Now() != 0 {
		t.Fatalf("zero-size IO advanced time to %v", env.Now())
	}
}

func TestPageCacheAdmissionAndPressure(t *testing.T) {
	env := sim.NewEnv()
	host := hostcpu.New(env, hostcpu.XeonGold6148x2)
	c := NewPageCache(host)
	c.Admit("imagenet", 100*units.GB, 141*units.GB)
	if got := c.CachedBytes("imagenet"); got != 100*units.GB {
		t.Fatalf("cached = %v", got)
	}
	// Admission clamps to the dataset size.
	c.Admit("imagenet", 100*units.GB, 141*units.GB)
	if got := c.CachedBytes("imagenet"); got != 141*units.GB {
		t.Fatalf("cached = %v, want clamped 141GB", got)
	}
	// Memory pressure stops admission silently.
	c.Admit("coco", 900*units.GB, units.TB)
	if got := c.CachedBytes("coco"); got != 0 {
		t.Fatalf("admission under pressure cached %v", got)
	}
	// Drop releases host memory.
	before := host.MemUtilization()
	c.Drop("imagenet")
	if host.MemUtilization() >= before {
		t.Fatal("drop did not release memory")
	}
	if c.CachedBytes("imagenet") != 0 {
		t.Fatal("dropped dataset still cached")
	}
}
