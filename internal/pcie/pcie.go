// Package pcie models PCI Express signalling: per-generation lane rates,
// encoding overhead, and the effective data-path bandwidths measured on the
// composable test bed. The effective numbers are calibrated against the
// paper's Table IV so that the simulated p2pBandwidthLatencyTest reproduces
// the published measurements.
package pcie

import (
	"fmt"
	"time"

	"composable/internal/units"
)

// Gen is a PCIe generation.
type Gen int

// PCIe generations.
const (
	Gen1 Gen = 1
	Gen2 Gen = 2
	Gen3 Gen = 3
	Gen4 Gen = 4
	Gen5 Gen = 5
)

func (g Gen) String() string { return fmt.Sprintf("PCI-e %d.0", int(g)) }

// laneGTs returns the per-lane transfer rate in GT/s.
func (g Gen) laneGTs() float64 {
	switch g {
	case Gen1:
		return 2.5
	case Gen2:
		return 5
	case Gen3:
		return 8
	case Gen4:
		return 16
	case Gen5:
		return 32
	default:
		panic(fmt.Sprintf("pcie: unknown generation %d", int(g)))
	}
}

// encodingEfficiency is the line-coding efficiency: 8b/10b for Gen1/2,
// 128b/130b from Gen3 on.
func (g Gen) encodingEfficiency() float64 {
	if g <= Gen2 {
		return 8.0 / 10.0
	}
	return 128.0 / 130.0
}

// RawBandwidth returns the per-direction line bandwidth of a link with the
// given lane count after line coding (e.g. Gen4 x16 ≈ 31.5 GB/s).
func RawBandwidth(g Gen, lanes int) units.BytesPerSec {
	return units.GBps(g.laneGTs() * float64(lanes) * g.encodingEfficiency() / 8)
}

// Calibrated effective data-path bandwidths (per direction). These are the
// only tuned constants in the PCIe model; each is pinned to a measurement in
// the paper's Table IV. Effective rates are well below raw line rate because
// of TLP headers, flow-control credits, read-completion turnaround and the
// DMA engines' achievable request rates — the same reasons the paper's
// measured numbers are far below 31.5 GB/s.
var (
	// EffSwitchP2P is GPU↔GPU through one Falcon drawer switch
	// (Gen4 x16 end to end). Table IV: F-F bidirectional = 24.47 GB/s,
	// i.e. 12.235 GB/s per direction.
	EffSwitchP2P = units.GBps(12.235)

	// EffHostAdapter is the Falcon host adapter as seen from the host
	// root complex (the adapter is Gen4 x16 but sits in a Gen3 x16
	// Skylake host slot, and root-complex P2P forwarding is the
	// bottleneck). Table IV: F-L bidirectional = 19.64 GB/s, i.e.
	// 9.82 GB/s per direction.
	EffHostAdapter = units.GBps(9.82)

	// EffLocalGPU is a host-local GPU's PCIe path to the root complex
	// (Gen3 x16): the other half of the F-L path, set equal to the F-L
	// bottleneck so neither hop hides the other.
	EffLocalGPU = units.GBps(9.82)

	// EffNVMe is an NVMe x4 device interface (Gen3 x4 ≈ 3.9 GB/s raw);
	// the media, not the link, bottlenecks reads in practice.
	EffNVMe = units.GBps(3.6)
)

// Per-hop traversal latencies, calibrated so the simulated p2p write
// latencies reproduce Table IV: F-F = 2.08 µs, F-L = 2.66 µs (with the
// 1.3 µs endpoint/DMA overhead accounted once per transfer by the fabric).
const (
	// SlotLatency is device ↔ drawer-switch traversal.
	SlotLatency = 390 * time.Nanosecond
	// HostLinkLatency is drawer-switch ↔ host-adapter over the CDFP cable.
	HostLinkLatency = 150 * time.Nanosecond
	// AdapterLatency is host-adapter ↔ root-complex traversal.
	AdapterLatency = 120 * time.Nanosecond
	// LocalGPULatency is a local GPU ↔ root-complex traversal (the local
	// GPUs sit behind on-board PCIe switches, hence the longer hop).
	LocalGPULatency = 700 * time.Nanosecond
	// NVMeLinkLatency is an NVMe device ↔ upstream port traversal.
	NVMeLinkLatency = 300 * time.Nanosecond
	// EndpointOverhead is the once-per-transfer DMA/driver setup cost;
	// it dominates small-message latency. Table IV: L-L = 1.85 µs with a
	// 0.55 µs NVLink hop.
	EndpointOverhead = 1300 * time.Nanosecond
)

// CDFPHostCable is the Falcon 4016's 400 Gb/s host cable line rate
// (the physical medium between host adapter and drawer; the adapter's
// PCIe slot, not this cable, is the practical bottleneck).
var CDFPHostCable = units.Gbps(400)
