package pcie

import (
	"math"
	"testing"
)

func TestRawBandwidthPerGeneration(t *testing.T) {
	// Published per-direction line rates for x16 links (GB/s).
	cases := []struct {
		gen  Gen
		want float64
	}{
		{Gen1, 4.0},
		{Gen2, 8.0},
		{Gen3, 15.75},
		{Gen4, 31.51},
		{Gen5, 63.02},
	}
	for _, c := range cases {
		got := RawBandwidth(c.gen, 16).GB()
		if math.Abs(got-c.want)/c.want > 0.01 {
			t.Errorf("%v x16 = %.2f GB/s, want %.2f", c.gen, got, c.want)
		}
	}
}

func TestEncodingEfficiency(t *testing.T) {
	// Gen1/2 use 8b/10b; Gen3+ use 128b/130b, so Gen3 at 8 GT/s delivers
	// almost double Gen2 at 5 GT/s.
	g2 := RawBandwidth(Gen2, 4).GB()
	g3 := RawBandwidth(Gen3, 4).GB()
	if r := g3 / g2; r < 1.9 || r > 2.1 {
		t.Errorf("gen3/gen2 ratio = %.2f, want ≈1.97", r)
	}
}

func TestCalibrationMatchesTableIV(t *testing.T) {
	// The effective constants must reproduce the paper's Table IV when
	// doubled (bidirectional measurements).
	if got := 2 * EffSwitchP2P.GB(); math.Abs(got-24.47) > 0.01 {
		t.Errorf("2x switch P2P = %.2f, want 24.47 (F-F)", got)
	}
	if got := 2 * EffHostAdapter.GB(); math.Abs(got-19.64) > 0.01 {
		t.Errorf("2x host adapter = %.2f, want 19.64 (F-L)", got)
	}
	// Effective rates must be below raw line rate (sanity).
	if EffSwitchP2P >= RawBandwidth(Gen4, 16) {
		t.Error("effective switch P2P exceeds raw Gen4 x16")
	}
	if EffLocalGPU >= RawBandwidth(Gen3, 16) {
		t.Error("effective local GPU exceeds raw Gen3 x16")
	}
}

func TestLatencyCalibration(t *testing.T) {
	// F-F: endpoint + 2 slot hops = 2.08 µs.
	if got := EndpointOverhead + 2*SlotLatency; got.Microseconds() != 2 || got.Nanoseconds() != 2080 {
		t.Errorf("F-F latency = %v, want 2.08µs", got)
	}
	// F-L: endpoint + slot + host link + adapter + local GPU = 2.66 µs.
	fl := EndpointOverhead + SlotLatency + HostLinkLatency + AdapterLatency + LocalGPULatency
	if fl.Nanoseconds() != 2660 {
		t.Errorf("F-L latency = %v, want 2.66µs", fl)
	}
}

func TestCDFPCable(t *testing.T) {
	if got := CDFPHostCable.GB(); got != 50 {
		t.Errorf("400Gb/s CDFP = %.0f GB/s, want 50", got)
	}
}

func TestUnknownGenerationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown generation")
		}
	}()
	RawBandwidth(Gen(9), 16)
}
