package composable_test

import (
	"context"
	"sync"
	"testing"

	"composable/internal/experiments"
)

// TestEveryExperimentDeterministicTwiceInProcess is the determinism
// property test guarding the allocation-free simulator core and the
// incremental fabric allocator: it runs every registered experiment —
// tables, figures, ablations and extensions — twice in one process on
// fresh sessions and asserts the rendered outputs are byte-identical.
// Any hidden state leaking between runs (a pooled slice surviving with
// stale contents, an allocator constraint not reset between epochs) shows
// up here as a diff.
func TestEveryExperimentDeterministicTwiceInProcess(t *testing.T) {
	runAll := func() []experiments.Report {
		t.Helper()
		s := experiments.NewSession(experiments.Quick)
		reports, err := experiments.NewRunner(s, nil).RunAll(context.Background(), 8)
		if err != nil {
			t.Fatalf("RunAll: %v", err)
		}
		return reports
	}
	first := runAll()
	second := runAll()
	if len(first) != len(second) {
		t.Fatalf("report counts differ: %d vs %d", len(first), len(second))
	}
	for i, want := range first {
		got := second[i]
		t.Run(want.ID, func(t *testing.T) {
			if got.ID != want.ID {
				t.Fatalf("report %d out of order: %s vs %s", i, want.ID, got.ID)
			}
			if got.Output != want.Output {
				t.Errorf("second run differs from first:\n--- first\n%s\n--- second\n%s",
					want.Output, got.Output)
			}
		})
	}
}

// TestPooledEventStorageUnderParallelRunner exercises the sim core's
// reusable event storage (typed heap, same-instant FIFO) under the
// parallel experiments runner with -race: many concurrent environments
// churn events at once, so any accidentally shared scratch between
// environments is a reported race, and interleaved parallel runs must
// still reproduce the sequential outputs.
func TestPooledEventStorageUnderParallelRunner(t *testing.T) {
	const rounds = 2
	outputs := make([][]experiments.Report, rounds)
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := experiments.NewSession(experiments.Quick)
			reports, err := experiments.NewRunner(s, nil).RunAll(context.Background(), 4)
			if err != nil {
				t.Errorf("parallel RunAll: %v", err)
				return
			}
			outputs[r] = reports
		}()
	}
	wg.Wait()

	// The interleaved rounds must agree with each other exactly (the
	// parallel-vs-sequential equivalence is pinned separately by
	// TestRunAllParallelEqualsSequential).
	want := outputs[0]
	for r, reports := range outputs[1:] {
		if reports == nil || want == nil {
			continue // already reported
		}
		if len(reports) != len(want) {
			t.Fatalf("round %d: %d reports, want %d", r+1, len(reports), len(want))
		}
		for i := range want {
			if reports[i].Output != want[i].Output {
				t.Errorf("round %d: %s diverged across interleaved runs", r+1, want[i].ID)
			}
		}
	}
}
