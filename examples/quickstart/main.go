// Quickstart: compose a system, train ResNet-50 on it, and print the
// measured summary — the smallest end-to-end use of the platform.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"composable/internal/core"
	"composable/internal/dlmodel"
	"composable/internal/gpu"
	"composable/internal/train"
)

// exampleIters returns the walkthrough's iteration count, honoring the
// EXAMPLES_ITERS override the repo's examples smoke test uses to run every
// example in its quickest mode.
func exampleIters(def int) int {
	if s := os.Getenv("EXAMPLES_ITERS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

func main() {
	// Compose the paper's localGPUs configuration: eight NVLink-attached
	// V100s with baseline local storage (Table III row 1).
	sys, err := core.NewSystem(core.LocalGPUs())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("composed:", sys.Cfg.Name, "—", sys.Cfg.Description())
	fmt.Printf("GPUs: %d (%s)\n\n", len(sys.GPUs), sys.GPUs[0].Spec.Name)

	// Train ResNet-50 with the paper's hyperparameters (batch 128/GPU,
	// FP16 mixed precision, DistributedDataParallel) on a scaled epoch.
	res, err := sys.Train(train.Options{
		Workload:      dlmodel.ResNet50Workload(),
		Precision:     gpu.FP16,
		Strategy:      train.DDP,
		Epochs:        2,
		ItersPerEpoch: exampleIters(25),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trained %s for %d iterations in %v (%.0f img/s global)\n",
		res.Workload, res.Iters, res.TotalTime,
		float64(res.Iters*res.BatchPerGPU*len(sys.GPUs))/res.TotalTime.Seconds())
	fmt.Printf("GPU util %.1f%%  GPU mem %.1f%%  CPU %.1f%%\n",
		res.AvgGPUUtil*100, res.AvgGPUMemUtil*100, res.AvgCPUUtil*100)
	if s := res.Recorder.Series(train.SeriesGPUUtil); s != nil {
		fmt.Printf("GPU utilization: |%s|\n", s.Sparkline(60))
	}
}
