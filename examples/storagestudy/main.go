// Storagestudy: the paper's Figure 15 experiment — the effect of the
// storage subsystem (baseline local store vs local NVMe vs Falcon-attached
// NVMe) on training time, per benchmark. Demonstrates storage composition
// and the page-cache/checkpoint mechanics behind the result.
//
//	go run ./examples/storagestudy
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"composable/internal/core"
	"composable/internal/dlmodel"
	"composable/internal/gpu"
	"composable/internal/train"
)

// exampleIters returns the walkthrough's iteration count, honoring the
// EXAMPLES_ITERS override the repo's examples smoke test uses to run every
// example in its quickest mode.
func exampleIters(def int) int {
	if s := os.Getenv("EXAMPLES_ITERS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

func main() {
	configs := []core.Config{core.LocalGPUs(), core.LocalNVMe(), core.FalconNVMe()}
	fmt.Printf("%-12s %-12s %14s %16s\n", "Model", "Storage", "total", "vs local store")
	for _, w := range dlmodel.Benchmarks() {
		var base float64
		for _, cfg := range configs {
			sys, err := core.NewSystem(cfg)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sys.Train(train.Options{
				Workload:      w,
				Precision:     gpu.FP16,
				Epochs:        2,
				ItersPerEpoch: exampleIters(15),
			})
			if err != nil {
				log.Fatal(err)
			}
			secs := res.TotalTime.Seconds()
			if cfg.Name == "localGPUs" {
				base = secs
			}
			fmt.Printf("%-12s %-12s %14v %+15.1f%%\n",
				w.Name, cfg.Name, res.TotalTime.Round(1e6), (secs/base-1)*100)
		}
	}
	fmt.Println("\nThe paper's finding (§V-C-3): NVMe accelerates the models with")
	fmt.Println("heavy checkpoint/data traffic (BERT, YOLOv5); Falcon-attached NVMe")
	fmt.Println("performs within a few percent of host-attached NVMe.")
}
