// Dynamic: advanced-mode device provisioning (§III-B-3) through the
// management plane — three hosts share a drawer, devices are re-allocated
// on the fly, the configuration is exported/imported, and the event log
// and sensors track everything. Demonstrates the chassis control plane
// that the other examples use implicitly.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	"composable/internal/falcon"
	"composable/internal/gpu"
)

func main() {
	ch := falcon.New("falcon-1")
	must(ch.CableHost("H1", "trainer-a"))
	must(ch.CableHost("H2", "trainer-b"))
	must(ch.CableHost("H3", "inference"))
	must(ch.SetMode(0, falcon.ModeAdvanced))

	// Seat eight V100s in drawer 0.
	for s := 0; s < falcon.SlotsPerDrawer; s++ {
		must(ch.Install(falcon.SlotRef{Drawer: 0, Slot: s}, falcon.DeviceInfo{
			ID:    fmt.Sprintf("v100-%d", s),
			Type:  falcon.DeviceGPU,
			Model: gpu.TeslaV100PCIe.Name, VendorID: "10de", LinkGen: 4, Lanes: 16,
		}))
	}

	// Phase 1: daytime layout — trainer-a gets 4 GPUs, trainer-b 2,
	// inference 2.
	layout := []string{"H1", "H1", "H1", "H1", "H2", "H2", "H3", "H3"}
	for s, port := range layout {
		must(ch.Attach(falcon.SlotRef{Drawer: 0, Slot: s}, port))
	}
	fmt.Println("=== phase 1: daytime layout")
	fmt.Print(ch.Topology())
	r := ch.Sensors()
	fmt.Printf("sensors: drawer0 %.1fC, fans %.0f%%\n\n", r.DrawerTempC[0], r.FanDutyPct)

	// Phase 2: the nightly big-model job needs all the GPUs trainer-b and
	// inference can spare. Advanced mode allows on-the-fly re-allocation —
	// no detach/re-cable cycle.
	for _, s := range []int{4, 5, 6} {
		must(ch.Reassign(falcon.SlotRef{Drawer: 0, Slot: s}, "H1"))
	}
	fmt.Println("=== phase 2: nightly layout (3 GPUs re-allocated to trainer-a)")
	fmt.Printf("trainer-a now owns %d devices\n", len(ch.AttachedToHost("trainer-a")))

	// Export the nightly layout so it can be replayed tomorrow.
	cfg, err := ch.ExportConfig()
	must(err)
	replay := falcon.New("falcon-2")
	must(replay.ImportConfig(cfg))
	fmt.Printf("exported %d bytes of config; replayed onto %s: trainer-a owns %d devices\n\n",
		len(cfg), replay.Name, len(replay.AttachedToHost("trainer-a")))

	// The mode machinery protects tenants: a fourth host is refused.
	must(ch.CableHost("H4", "stray-host"))
	if err := ch.Reassign(falcon.SlotRef{Drawer: 0, Slot: 7}, "H4"); err != nil {
		fmt.Println("fourth host correctly refused:", err)
	}

	fmt.Println("\n=== event log (last 6)")
	evs := ch.Events()
	for _, e := range evs[max(0, len(evs)-6):] {
		fmt.Printf("[%s] %s\n", e.Severity, e.Message)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
