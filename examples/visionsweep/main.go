// Visionsweep: the paper's Figure 11 experiment for the vision benchmarks —
// how much does moving GPUs from NVLink (local) to the Falcon chassis
// (PCIe-switched) cost each model? Demonstrates sweeping one workload
// across system compositions.
//
//	go run ./examples/visionsweep
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"composable/internal/core"
	"composable/internal/dlmodel"
	"composable/internal/gpu"
	"composable/internal/train"
)

// exampleIters returns the walkthrough's iteration count, honoring the
// EXAMPLES_ITERS override the repo's examples smoke test uses to run every
// example in its quickest mode.
func exampleIters(def int) int {
	if s := os.Getenv("EXAMPLES_ITERS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

func main() {
	configs := []core.Config{core.LocalGPUs(), core.HybridGPUs(), core.FalconGPUs()}
	models := []dlmodel.Workload{
		dlmodel.MobileNetV2Workload(),
		dlmodel.ResNet50Workload(),
		dlmodel.YOLOv5LWorkload(),
	}

	fmt.Printf("%-12s %-12s %14s %12s %14s\n", "Model", "Config", "total", "avg iter", "vs localGPUs")
	for _, w := range models {
		var base float64
		for _, cfg := range configs {
			sys, err := core.NewSystem(cfg)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sys.Train(train.Options{
				Workload:      w,
				Precision:     gpu.FP16,
				Epochs:        2,
				ItersPerEpoch: exampleIters(20),
			})
			if err != nil {
				log.Fatal(err)
			}
			secs := res.TotalTime.Seconds()
			if cfg.Name == "localGPUs" {
				base = secs
			}
			fmt.Printf("%-12s %-12s %14v %12v %+13.1f%%\n",
				w.Name, cfg.Name, res.TotalTime.Round(1e6), res.AvgIter.Round(1e5),
				(secs/base-1)*100)
		}
	}
	fmt.Println("\nThe paper's finding (§V-C-2): vision training is <7% slower on")
	fmt.Println("Falcon-attached GPUs — the PCIe-switching overhead is hidden by")
	fmt.Println("DDP's bucket overlap because vision gradients are small.")
}
