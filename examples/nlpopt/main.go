// Nlpopt: the paper's Figure 16 study — BERT-large fine-tuning under the
// four software configurations (DataParallel vs DistributedDataParallel,
// FP32 vs FP16 mixed precision, ZeRO-2 sharding), on local and
// Falcon-attached GPUs. Demonstrates strategy/precision options and the
// sharding-enabled batch-size increase (6 → 10).
//
//	go run ./examples/nlpopt
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"composable/internal/core"
	"composable/internal/dlmodel"
	"composable/internal/gpu"
	"composable/internal/train"
)

// exampleIters returns the walkthrough's iteration count, honoring the
// EXAMPLES_ITERS override the repo's examples smoke test uses to run every
// example in its quickest mode.
func exampleIters(def int) int {
	if s := os.Getenv("EXAMPLES_ITERS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

func main() {
	w := dlmodel.BERTLargeWorkload()
	fp32Batch := w.MaxBatch(gpu.TeslaV100SXM2, gpu.FP32, 1)
	shardedBatch := w.MaxBatch(gpu.TeslaV100SXM2, gpu.FP16, 8)
	fmt.Printf("BERT-large memory ceilings on 16GB V100: FP32 batch %d, FP16 batch %d, sharded batch %d\n\n",
		fp32Batch, w.MaxBatch(gpu.TeslaV100SXM2, gpu.FP16, 1), shardedBatch)

	variants := []struct {
		label string
		opts  train.Options
	}{
		{"DP  + FP32", train.Options{Strategy: train.DP, Precision: gpu.FP32, BatchPerGPU: fp32Batch}},
		{"DDP + FP32", train.Options{Strategy: train.DDP, Precision: gpu.FP32, BatchPerGPU: fp32Batch}},
		{"DP  + FP16", train.Options{Strategy: train.DP, Precision: gpu.FP16}},
		{"DDP + FP16", train.Options{Strategy: train.DDP, Precision: gpu.FP16}},
		{"DDP + FP16 + sharded", train.Options{Strategy: train.DDP, Precision: gpu.FP16, Sharded: true, BatchPerGPU: shardedBatch}},
	}

	for _, cfg := range []core.Config{core.LocalGPUs(), core.FalconGPUs()} {
		fmt.Printf("=== %s\n", cfg.Name)
		fmt.Printf("%-22s %8s %14s %14s\n", "variant", "batch", "total", "ms/sample")
		for _, v := range variants {
			sys, err := core.NewSystem(cfg)
			if err != nil {
				log.Fatal(err)
			}
			opts := v.opts
			opts.Workload = w
			opts.Epochs = 2
			opts.ItersPerEpoch = exampleIters(12)
			res, err := sys.Train(opts)
			if err != nil {
				log.Fatal(err)
			}
			perSample := res.TotalTime.Seconds() * 1e3 / float64(res.Iters*res.BatchPerGPU)
			fmt.Printf("%-22s %8d %14v %14.1f\n", v.label, res.BatchPerGPU,
				res.TotalTime.Round(1e6), perSample)
		}
		fmt.Println()
	}

	// Demonstrate the OOM boundary the paper reports: batch 7 without
	// sharding does not fit.
	sys, err := core.NewSystem(core.LocalGPUs())
	if err != nil {
		log.Fatal(err)
	}
	_, err = sys.Train(train.Options{
		Workload: w, Precision: gpu.FP16, BatchPerGPU: 7, Epochs: 1, ItersPerEpoch: exampleIters(1),
	})
	fmt.Println("batch 7 without sharding:", err)
}
