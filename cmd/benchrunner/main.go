// Command benchrunner regenerates the paper's evaluation: every table
// (I–IV) and figure (9–16), printed as text reports with the published
// values alongside for comparison.
//
// Usage:
//
//	benchrunner                 # run everything at standard scale
//	benchrunner -exp F11,F12    # selected experiments
//	benchrunner -scale quick    # faster, noisier
//	benchrunner -list           # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"composable/internal/experiments"
)

func main() {
	var (
		expFlag   = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		scaleFlag = flag.String("scale", "standard", "simulation scale: quick or standard")
		listFlag  = flag.Bool("list", false, "list experiment IDs and exit")
		extFlag   = flag.Bool("ext", false, "also run ablations/extensions (A1-A4, X1)")
	)
	flag.Parse()

	if *listFlag {
		for _, e := range append(experiments.All(), experiments.Extensions()...) {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	scale := experiments.Standard
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "standard":
	default:
		fmt.Fprintf(os.Stderr, "benchrunner: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	var selected []experiments.Experiment
	if *expFlag == "" {
		selected = experiments.All()
		if *extFlag {
			selected = append(selected, experiments.Extensions()...)
		}
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchrunner:", err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	session := experiments.NewSession(scale)
	fmt.Printf("composable benchrunner — scale %s (%d iters/epoch, ≤%d epochs)\n\n",
		scale.Name, scale.ItersPerEpoch, scale.MaxEpochs)
	for _, e := range selected {
		start := time.Now()
		out, err := e.Run(session)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s: %s (ran in %v)\n%s\n", e.ID, e.Title, time.Since(start).Round(time.Millisecond), out)
	}
}
