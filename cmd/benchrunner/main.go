// Command benchrunner regenerates the paper's evaluation: every table
// (I–IV) and figure (9–16), printed as text reports with the published
// values alongside for comparison.
//
// Usage:
//
//	benchrunner                 # run everything at standard scale
//	benchrunner -exp F11,F12    # selected experiments
//	benchrunner -scale quick    # faster, noisier
//	benchrunner -parallel 8     # worker-pool width (default GOMAXPROCS)
//	benchrunner -list           # list experiment IDs
//	benchrunner -bench-json BENCH_PR2.json   # emit the perf trajectory file
//	benchrunner -cpuprofile cpu.out          # profile whatever runs
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"composable/internal/experiments"
	"composable/internal/perfbench"
)

func main() {
	// The binary's only wall-clock read: run() reports suite wall time
	// through this injected clock (the mcs.Server.clock pattern), keeping
	// the nowallclock allowlist to this single annotated line.
	//lint:allow nowallclock(sole telemetry clock injection point of the benchrunner binary)
	os.Exit(run(time.Now))
}

// run holds the real main so profile-flushing defers execute before the
// process exits with a status code. clock feeds the elapsed-time summary
// lines; experiment outputs never depend on it.
func run(clock func() time.Time) int {
	var (
		expFlag      = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		scaleFlag    = flag.String("scale", "standard", "simulation scale: quick or standard")
		listFlag     = flag.Bool("list", false, "list experiment IDs and exit")
		extFlag      = flag.Bool("ext", false, "also run ablations/extensions/fleet studies (A1-A4, X1-X2, S1-S3)")
		parallelFlag = flag.Int("parallel", runtime.GOMAXPROCS(0), "experiment worker-pool width (1 = sequential)")
		benchJSON    = flag.String("bench-json", "", "run the performance micro-benchmark suite and write results to this file instead of running experiments")
		benchLabel   = flag.String("bench-label", "dev", "label recorded in the -bench-json report (e.g. PR2)")
		benchAgainst = flag.String("bench-against", "", "with -bench-json: compare against this baseline BENCH_*.json and report per-benchmark deltas (exit 3 on regression)")
		benchTol     = flag.Float64("bench-tolerance", 0.25, "with -bench-against: tolerated relative slowdown before a delta counts as a regression")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile   = flag.String("memprofile", "", "write a heap profile at exit to this file")
		traceOut     = flag.String("trace", "", "run one observed fleet-schedule op and write its Chrome trace_event JSON to this file, then exit")
	)
	flag.Parse()

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			return 1
		}
		err = perfbench.TraceFleetSchedule(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *traceOut)
		return 0
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchrunner:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "benchrunner:", err)
			}
		}()
	}

	if *benchJSON != "" {
		fmt.Printf("composable benchrunner — performance micro-benchmark suite (label %s)\n", *benchLabel)
		results := perfbench.PerfSuite()
		for _, r := range results {
			fmt.Printf("%-28s %12.1f ns/op %8d allocs/op %10d B/op %14.0f ops/s\n",
				r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.OpsPerSec)
		}
		if err := perfbench.WritePerfReport(*benchJSON, *benchLabel, results); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *benchJSON)
		if *benchAgainst != "" {
			base, err := perfbench.ReadPerfReport(*benchAgainst)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchrunner:", err)
				return 1
			}
			current := perfbench.NewPerfReport(*benchLabel, results)
			deltas := perfbench.Compare(base, current, *benchTol)
			fmt.Printf("\nvs %s (label %s):\n", *benchAgainst, base.Label)
			for _, w := range perfbench.EnvMismatch(base, current) {
				fmt.Printf("warning: environment mismatch: %s\n", w)
			}
			for _, d := range deltas {
				switch {
				case d.Missing:
					fmt.Printf("%-28s only in one report\n", d.Name)
				default:
					tag := ""
					if d.Regressed {
						tag = "  REGRESSED"
					}
					fmt.Printf("%-28s %12.1f → %12.1f ns/op (×%.2f)%s\n",
						d.Name, d.OldNsPerOp, d.NewNsPerOp, d.Ratio, tag)
				}
			}
			if regs := perfbench.Regressions(deltas); len(regs) > 0 {
				fmt.Fprintf(os.Stderr, "benchrunner: %d benchmark(s) regressed beyond ×%.2f\n", len(regs), 1+*benchTol)
				return 3
			}
		}
		return 0
	}

	if *listFlag {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}

	scale := experiments.Standard
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "standard":
	default:
		fmt.Fprintf(os.Stderr, "benchrunner: unknown scale %q\n", *scaleFlag)
		return 2
	}

	var selected []experiments.Experiment
	if *expFlag == "" {
		selected = experiments.All()
		if *extFlag {
			selected = append(selected, experiments.Extensions()...)
			selected = append(selected, experiments.FleetExperiments()...)
		}
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchrunner:", err)
				return 2
			}
			selected = append(selected, e)
		}
	}

	workers := *parallelFlag
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(selected) {
		workers = len(selected)
	}
	session := experiments.NewSession(scale)
	runner := experiments.NewRunner(session, selected)
	fmt.Printf("composable benchrunner — scale %s (%d iters/epoch, ≤%d epochs), %d workers\n\n",
		scale.Name, scale.ItersPerEpoch, scale.MaxEpochs, workers)

	start := clock()
	reports, err := runner.RunAll(context.Background(), workers)
	wall := clock().Sub(start)
	for _, r := range reports {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", r.Err)
			continue
		}
		fmt.Printf("=== %s: %s (ran in %v)\n%s\n", r.ID, r.Title, r.Elapsed.Round(time.Millisecond), r.Output)
	}
	if err != nil {
		return 1
	}

	var busy time.Duration
	for _, r := range reports {
		busy += r.Elapsed
	}
	st := session.Stats()
	fmt.Printf("--- %d experiments in %v (per-experiment sum %v, %.1fx overlap)\n",
		len(reports), wall.Round(time.Millisecond), busy.Round(time.Millisecond),
		busy.Seconds()/wall.Seconds())
	fmt.Printf("--- session: %d training runs executed, %d cache hits, %d deduplicated joins\n",
		st.TrainRuns, st.CacheHits, st.Joins)
	return 0
}
