// Command mcsd runs the Management Center Server (§II-D): the multi-tenant
// HTTP control plane for a Falcon chassis. It seats the paper's device
// inventory (16 V100s + NVMe across two drawers), cables the configured
// hosts, and serves the management API.
//
// Usage:
//
//	mcsd -addr :8080 -users users.json
//
// where users.json is a list of {"name","role","token","hosts":[...]}.
// Without -users a demo tenant set is used (tokens printed at startup).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"composable/internal/falcon"
	"composable/internal/gpu"
	"composable/internal/mcs"
	"composable/internal/storage"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, http.ListenAndServe)) }

// run is the testable main: parse flags, seed the chassis, build the
// server and hand it to serve (http.ListenAndServe in production, a stub
// in tests). It returns the process exit code.
func run(args []string, stdout, stderr io.Writer, serve func(addr string, h http.Handler) error) int {
	fs := flag.NewFlagSet("mcsd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		usersFile = fs.String("users", "", "JSON file with the tenant list")
		sloSpec   = fs.String("slo", "", `SLO every queue drain is scored against, e.g. "p99-wait<=1m max-failed<=0" (admin GET /api/health reports the verdict)`)
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ch := falcon.New("falcon-1")
	if err := seedInventory(ch); err != nil {
		fmt.Fprintln(stderr, "mcsd:", err)
		return 1
	}

	users := demoUsers()
	if *usersFile != "" {
		var err error
		if users, err = loadUsers(*usersFile); err != nil {
			fmt.Fprintln(stderr, "mcsd:", err)
			return 1
		}
	} else {
		fmt.Fprintln(stdout, "mcsd: using demo tenants:")
		for _, u := range users {
			fmt.Fprintf(stdout, "  %-8s role=%-6s token=%s hosts=%v\n", u.Name, u.Role, u.Token, u.Hosts)
		}
	}

	srv := mcs.NewServer(ch, users)
	if err := srv.SetSLO(*sloSpec); err != nil {
		fmt.Fprintln(stderr, "mcsd:", err)
		return 2
	}
	if *sloSpec != "" {
		fmt.Fprintf(stdout, "mcsd: scoring queue drains against SLO %q\n", *sloSpec)
	}
	fmt.Fprintf(stdout, "mcsd: serving Falcon management API on %s\n", *addr)
	if err := serve(*addr, srv.Handler()); err != nil {
		fmt.Fprintln(stderr, "mcsd:", err)
		return 1
	}
	return 0
}

// loadUsers reads the tenant list from a JSON file.
func loadUsers(path string) ([]mcs.User, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var users []mcs.User
	if err := json.Unmarshal(data, &users); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return users, nil
}

// seedInventory populates the chassis with the paper's device set
// (§V-A-1): V100s in both drawers plus the drawer-2 NVMe, hosts cabled to
// all four ports, both drawers in advanced mode for dynamic provisioning.
func seedInventory(ch *falcon.Chassis) error {
	if err := ch.CableHost("H1", "host1"); err != nil {
		return fmt.Errorf("seeding chassis: %w", err)
	}
	if err := ch.CableHost("H2", "host1"); err != nil {
		return fmt.Errorf("seeding chassis: %w", err)
	}
	if err := ch.CableHost("H3", "host2"); err != nil {
		return fmt.Errorf("seeding chassis: %w", err)
	}
	if err := ch.CableHost("H4", "host2"); err != nil {
		return fmt.Errorf("seeding chassis: %w", err)
	}
	if err := ch.SetMode(0, falcon.ModeAdvanced); err != nil {
		return fmt.Errorf("seeding chassis: %w", err)
	}
	if err := ch.SetMode(1, falcon.ModeAdvanced); err != nil {
		return fmt.Errorf("seeding chassis: %w", err)
	}
	for d := 0; d < falcon.NumDrawers; d++ {
		for s := 0; s < 4; s++ {
			err := ch.Install(falcon.SlotRef{Drawer: d, Slot: s}, falcon.DeviceInfo{
				ID:    fmt.Sprintf("v100-d%d-s%d", d, s),
				Type:  falcon.DeviceGPU,
				Model: gpu.TeslaV100PCIe.Name, VendorID: "10de", LinkGen: 4, Lanes: 16,
			})
			if err != nil {
				return fmt.Errorf("seeding chassis: %w", err)
			}
		}
	}
	err := ch.Install(falcon.SlotRef{Drawer: 1, Slot: 7}, falcon.DeviceInfo{
		ID: "nvme-0", Type: falcon.DeviceNVMe,
		Model: storage.IntelNVMe4TB.Name, VendorID: "8086", LinkGen: 3, Lanes: 4,
	})
	if err != nil {
		return fmt.Errorf("seeding chassis: %w", err)
	}
	return nil
}

func demoUsers() []mcs.User {
	return []mcs.User{
		{Name: "admin", Role: mcs.RoleAdmin, Token: "demo-admin-token"},
		{Name: "alice", Role: mcs.RoleUser, Token: "demo-alice-token", Hosts: []string{"host1"}},
		{Name: "bob", Role: mcs.RoleUser, Token: "demo-bob-token", Hosts: []string{"host2"}},
	}
}
