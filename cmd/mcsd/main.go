// Command mcsd runs the Management Center Server (§II-D): the multi-tenant
// HTTP control plane for a Falcon chassis. It seats the paper's device
// inventory (16 V100s + NVMe across two drawers), cables the configured
// hosts, and serves the management API.
//
// Usage:
//
//	mcsd -addr :8080 -users users.json
//
// where users.json is a list of {"name","role","token","hosts":[...]}.
// Without -users a demo tenant set is used (tokens printed at startup).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"composable/internal/falcon"
	"composable/internal/gpu"
	"composable/internal/mcs"
	"composable/internal/storage"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		usersFile = flag.String("users", "", "JSON file with the tenant list")
	)
	flag.Parse()

	ch := falcon.New("falcon-1")
	seedInventory(ch)

	users := demoUsers()
	if *usersFile != "" {
		data, err := os.ReadFile(*usersFile)
		if err != nil {
			log.Fatalf("mcsd: %v", err)
		}
		users = nil
		if err := json.Unmarshal(data, &users); err != nil {
			log.Fatalf("mcsd: parsing %s: %v", *usersFile, err)
		}
	} else {
		fmt.Println("mcsd: using demo tenants:")
		for _, u := range users {
			fmt.Printf("  %-8s role=%-6s token=%s hosts=%v\n", u.Name, u.Role, u.Token, u.Hosts)
		}
	}

	srv := mcs.NewServer(ch, users)
	fmt.Printf("mcsd: serving Falcon management API on %s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}

// seedInventory populates the chassis with the paper's device set
// (§V-A-1): V100s in both drawers plus the drawer-2 NVMe, hosts cabled to
// all four ports, both drawers in advanced mode for dynamic provisioning.
func seedInventory(ch *falcon.Chassis) {
	must := func(err error) {
		if err != nil {
			log.Fatalf("mcsd: seeding chassis: %v", err)
		}
	}
	must(ch.CableHost("H1", "host1"))
	must(ch.CableHost("H2", "host1"))
	must(ch.CableHost("H3", "host2"))
	must(ch.CableHost("H4", "host2"))
	must(ch.SetMode(0, falcon.ModeAdvanced))
	must(ch.SetMode(1, falcon.ModeAdvanced))
	for d := 0; d < falcon.NumDrawers; d++ {
		for s := 0; s < 4; s++ {
			must(ch.Install(falcon.SlotRef{Drawer: d, Slot: s}, falcon.DeviceInfo{
				ID:    fmt.Sprintf("v100-d%d-s%d", d, s),
				Type:  falcon.DeviceGPU,
				Model: gpu.TeslaV100PCIe.Name, VendorID: "10de", LinkGen: 4, Lanes: 16,
			}))
		}
	}
	must(ch.Install(falcon.SlotRef{Drawer: 1, Slot: 7}, falcon.DeviceInfo{
		ID: "nvme-0", Type: falcon.DeviceNVMe,
		Model: storage.IntelNVMe4TB.Name, VendorID: "8086", LinkGen: 3, Lanes: 4,
	}))
}

func demoUsers() []mcs.User {
	return []mcs.User{
		{Name: "admin", Role: mcs.RoleAdmin, Token: "demo-admin-token"},
		{Name: "alice", Role: mcs.RoleUser, Token: "demo-alice-token", Hosts: []string{"host1"}},
		{Name: "bob", Role: mcs.RoleUser, Token: "demo-bob-token", Hosts: []string{"host2"}},
	}
}
