package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"composable/internal/falcon"
)

// capture runs main's run() with a stub serve that grabs the handler
// instead of binding a socket.
func capture(t *testing.T, args ...string) (code int, addr string, h http.Handler, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb, func(a string, handler http.Handler) error {
		addr, h = a, handler
		return nil
	})
	return code, addr, h, out.String(), errb.String()
}

func TestBadFlagRejected(t *testing.T) {
	code, _, _, _, _ := capture(t, "-no-such-flag")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestMissingUsersFileRejected(t *testing.T) {
	code, _, _, _, stderr := capture(t, "-users", "/does/not/exist.json")
	if code != 1 || !strings.Contains(stderr, "mcsd:") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestMalformedUsersFileRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "users.json")
	if err := os.WriteFile(path, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, _, _, stderr := capture(t, "-users", path)
	if code != 1 || !strings.Contains(stderr, "parsing") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestServeErrorPropagates(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(nil, &out, &errb, func(string, http.Handler) error {
		return errors.New("bind: address in use")
	})
	if code != 1 || !strings.Contains(errb.String(), "address in use") {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
}

func TestDemoModeAnnouncesTenants(t *testing.T) {
	code, addr, h, stdout, _ := capture(t, "-addr", ":9999")
	if code != 0 || h == nil {
		t.Fatalf("exit %d, handler %v", code, h)
	}
	if addr != ":9999" {
		t.Errorf("addr = %q", addr)
	}
	for _, want := range []string{"demo tenants", "demo-admin-token", "alice", "bob", ":9999"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
}

func TestSeedInventoryMatchesPaper(t *testing.T) {
	ch := falcon.New("falcon-test")
	if err := seedInventory(ch); err != nil {
		t.Fatal(err)
	}
	gpus, nvmes := 0, 0
	for _, ref := range ch.Slots() {
		switch ch.Device(ref).Type {
		case falcon.DeviceGPU:
			gpus++
		case falcon.DeviceNVMe:
			nvmes++
		}
	}
	if gpus != 8 || nvmes != 1 {
		t.Fatalf("seeded %d GPUs and %d NVMes, want 8 and 1", gpus, nvmes)
	}
	// Seeding twice must fail (slots already occupied) — run() treats
	// that as a fatal configuration error.
	if err := seedInventory(ch); err == nil {
		t.Fatal("re-seeding an occupied chassis did not error")
	}
}

// TestServedAPIEndToEnd drives the handler run() builds through a real
// HTTP round trip: auth, tenant isolation, attach/detach, admin surfaces.
func TestServedAPIEndToEnd(t *testing.T) {
	usersPath := filepath.Join(t.TempDir(), "users.json")
	users := `[
		{"Name":"root","Role":"admin","Token":"tok-root"},
		{"Name":"alice","Role":"user","Token":"tok-alice","Hosts":["host1"]},
		{"Name":"bob","Role":"user","Token":"tok-bob","Hosts":["host2"]}
	]`
	if err := os.WriteFile(usersPath, []byte(users), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, h, _, stderr := capture(t, "-users", usersPath)
	if code != 0 || h == nil {
		t.Fatalf("exit %d, stderr %s", code, stderr)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	do := func(method, path, token string, body any) (*http.Response, []byte) {
		t.Helper()
		var buf bytes.Buffer
		if body != nil {
			if err := json.NewEncoder(&buf).Encode(body); err != nil {
				t.Fatal(err)
			}
		}
		req, err := http.NewRequest(method, ts.URL+path, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out bytes.Buffer
		if _, err := out.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, out.Bytes()
	}

	// No token → 401.
	if resp, _ := do("GET", "/api/topology", "", nil); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthenticated topology: %d", resp.StatusCode)
	}
	// The seeded inventory is visible to a tenant.
	resp, body := do("GET", "/api/devices", "tok-alice", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("devices: %d", resp.StatusCode)
	}
	for _, want := range []string{"v100-d0-s0", "v100-d1-s3", "nvme-0"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("devices missing %q", want)
		}
	}
	// Tenant attach on an owned port works...
	resp, body = do("POST", "/api/attach", "tok-alice",
		map[string]any{"drawer": 0, "slot": 0, "port": "H1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alice attach: %d %s", resp.StatusCode, body)
	}
	// ...and on someone else's port is forbidden.
	resp, _ = do("POST", "/api/attach", "tok-bob",
		map[string]any{"drawer": 0, "slot": 1, "port": "H1"})
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("bob attaching to host1 port: %d, want 403", resp.StatusCode)
	}
	// Admin-only surfaces are gated.
	if resp, _ = do("GET", "/api/audit", "tok-alice", nil); resp.StatusCode != http.StatusForbidden {
		t.Errorf("alice reading audit log: %d, want 403", resp.StatusCode)
	}
	resp, body = do("GET", "/api/audit", "tok-root", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "attach") {
		t.Errorf("admin audit: %d %s", resp.StatusCode, body)
	}

	// Fleet job queue rides on the same served handler: submit as a
	// tenant, drain as admin (policy run on the simulated fleet), read
	// the telemetry back. Tenancy details are covered in internal/mcs.
	resp, body = do("POST", "/api/jobs", "tok-alice",
		map[string]any{"workload": "ResNet-50", "gpus": 2, "iters": 2})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("job submit: %d %s", resp.StatusCode, body)
	}
	if resp, _ = do("POST", "/api/jobs/run", "tok-alice", map[string]any{}); resp.StatusCode != http.StatusForbidden {
		t.Errorf("tenant draining the queue: %d, want 403", resp.StatusCode)
	}
	resp, body = do("POST", "/api/jobs/run", "tok-root", map[string]any{"hosts": 2, "gpus": 4})
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ran":1`) {
		t.Errorf("admin run: %d %s", resp.StatusCode, body)
	}
	resp, body = do("GET", "/api/jobs/0", "tok-alice", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"status":"done"`) {
		t.Errorf("job status: %d %s", resp.StatusCode, body)
	}
}
