// Command advisor recommends the best system composition for a workload —
// the paper's §VI future-work framework, built on the simulator. It
// evaluates the candidate topologies, ranks them by throughput, and
// explains the outcome in terms of gradient-synchronization overlap.
//
// Usage:
//
//	advisor -model BERT-L
//	advisor -model ResNet-50 -iters 20
package main

import (
	"flag"
	"fmt"
	"os"

	"composable/internal/advisor"
	"composable/internal/dlmodel"
)

func main() {
	var (
		modelName = flag.String("model", "BERT-L", "benchmark (Table II name)")
		iters     = flag.Int("iters", 12, "iterations per evaluation epoch")
		epochs    = flag.Int("epochs", 2, "evaluation epochs")
	)
	flag.Parse()

	w, err := dlmodel.BenchmarkByName(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "advisor:", err)
		os.Exit(2)
	}
	rec, err := advisor.Recommend(w, nil, advisor.Options{ItersPerEpoch: *iters, Epochs: *epochs})
	if err != nil {
		fmt.Fprintln(os.Stderr, "advisor:", err)
		os.Exit(1)
	}
	fmt.Print(rec.Report())
}
