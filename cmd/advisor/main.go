// Command advisor recommends the best system composition for a workload —
// the paper's §VI future-work framework, built on the simulator. It
// evaluates the candidate topologies, ranks them by throughput, and
// explains the outcome in terms of gradient-synchronization overlap.
//
// With -fleet it switches to fleet mode: given a described job mix, it
// replays the mix on the simulated multi-host testbed under every
// placement policy and recommends one (internal/advisor.RecommendPolicy).
//
// Usage:
//
//	advisor -model BERT-L
//	advisor -model ResNet-50 -iters 20
//	advisor -fleet 4xResNet-50:4,2xBERT:2
//	advisor -fleet 3xMobileNetV2:2 -hosts 2 -gpus 8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"composable/internal/advisor"
	"composable/internal/dlmodel"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the testable main: parse flags, dispatch to the topology or
// fleet path, and return the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("advisor", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		modelName = fs.String("model", "BERT-L", "benchmark (Table II name)")
		iters     = fs.Int("iters", 12, "iterations per evaluation epoch")
		epochs    = fs.Int("epochs", 2, "evaluation epochs")
		fleetMix  = fs.String("fleet", "", "job mix 'COUNTxWORKLOAD:GPUS[,...]' — recommend a placement policy instead of a topology")
		hosts     = fs.Int("hosts", 3, "with -fleet: host machines on the chassis")
		gpus      = fs.Int("gpus", 12, "with -fleet: chassis GPU inventory")
		mtbf      = fs.Duration("mtbf", 0, "with -fleet: replay the mix under a seeded fault profile with this mean time between failures (0 = fault-free)")
		faultSeed = fs.Int64("fault-seed", 1, "with -fleet -mtbf: fault schedule seed")
		sloSpec   = fs.String("slo", "", `with -fleet: score every policy against this SLO, e.g. "p99-wait<=500ms max-failed<=0"`)
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *fleetMix != "" {
		mix, err := parseMix(*fleetMix)
		if err != nil {
			fmt.Fprintln(stderr, "advisor:", err)
			return 2
		}
		mix.Hosts, mix.GPUs = *hosts, *gpus
		mix.ItersPerEpoch = *iters
		mix.MTBF, mix.FaultSeed = *mtbf, *faultSeed
		mix.SLO = *sloSpec
		rec, err := advisor.RecommendPolicy(mix)
		if err != nil {
			fmt.Fprintln(stderr, "advisor:", err)
			return 1
		}
		fmt.Fprint(stdout, rec.Report())
		return 0
	}

	w, err := dlmodel.BenchmarkByName(*modelName)
	if err != nil {
		fmt.Fprintln(stderr, "advisor:", err)
		return 2
	}
	rec, err := advisor.Recommend(w, nil, advisor.Options{ItersPerEpoch: *iters, Epochs: *epochs})
	if err != nil {
		fmt.Fprintln(stderr, "advisor:", err)
		return 1
	}
	fmt.Fprint(stdout, rec.Report())
	return 0
}

// parseMix parses "COUNTxWORKLOAD:GPUS[,...]" into a fleet job mix, e.g.
// "4xResNet-50:4,2xBERT:2".
func parseMix(s string) (advisor.FleetMix, error) {
	var mix advisor.FleetMix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		countStr, rest, ok := strings.Cut(part, "x")
		if !ok {
			return mix, fmt.Errorf("bad mix entry %q (want COUNTxWORKLOAD:GPUS)", part)
		}
		wl, gpuStr, ok := strings.Cut(rest, ":")
		if !ok {
			return mix, fmt.Errorf("bad mix entry %q (want COUNTxWORKLOAD:GPUS)", part)
		}
		count, err := strconv.Atoi(countStr)
		if err != nil || count < 1 {
			return mix, fmt.Errorf("bad count in %q", part)
		}
		g, err := strconv.Atoi(gpuStr)
		if err != nil || g < 1 {
			return mix, fmt.Errorf("bad GPU count in %q", part)
		}
		if _, err := dlmodel.BenchmarkByName(wl); err != nil {
			return mix, err
		}
		mix.Classes = append(mix.Classes, advisor.FleetJobClass{Count: count, GPUs: g, Workload: wl})
	}
	return mix, nil
}
