package main

import (
	"bytes"
	"strings"
	"testing"

	"composable/internal/advisor"
)

func capture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestBadFlagRejected(t *testing.T) {
	if code, _, _ := capture(t, "-no-such-flag"); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestUnknownModelRejected(t *testing.T) {
	code, _, stderr := capture(t, "-model", "GPT-17")
	if code != 2 || !strings.Contains(stderr, "unknown benchmark") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestTopologyRecommendation(t *testing.T) {
	code, stdout, stderr := capture(t, "-model", "ResNet-50", "-iters", "4", "-epochs", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	for _, want := range []string{"Recommendation for ResNet-50", "localGPUs", "falconGPUs", "→"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("report missing %q:\n%s", want, stdout)
		}
	}
}

func TestFleetRecommendation(t *testing.T) {
	code, stdout, stderr := capture(t, "-fleet", "3xResNet-50:4,2xBERT:2", "-iters", "3")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	for _, want := range []string{"Placement-policy recommendation", "drawer", "firstfit", "→"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("report missing %q:\n%s", want, stdout)
		}
	}
}

func TestFleetMixParsing(t *testing.T) {
	mix, err := parseMix("4xResNet-50:4, 2xBERT:2")
	if err != nil {
		t.Fatal(err)
	}
	want := []advisor.FleetJobClass{
		{Count: 4, GPUs: 4, Workload: "ResNet-50"},
		{Count: 2, GPUs: 2, Workload: "BERT"},
	}
	if len(mix.Classes) != 2 || mix.Classes[0] != want[0] || mix.Classes[1] != want[1] {
		t.Fatalf("parsed %+v", mix.Classes)
	}
	for _, bad := range []string{"", "ResNet-50:4", "4xResNet-50", "0xBERT:2", "1xBERT:zero", "2xNope:2"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

func TestBadMixExitsTwo(t *testing.T) {
	code, _, stderr := capture(t, "-fleet", "definitely-not-a-mix")
	if code != 2 || !strings.Contains(stderr, "bad mix entry") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestFleetMTBFFlag(t *testing.T) {
	code, stdout, stderr := capture(t,
		"-fleet", "4xResNet-50:4,2xBERT:2", "-iters", "4", "-mtbf", "2s", "-fault-seed", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	for _, want := range []string{"fault profile: MTBF 2s", "goodput", "kills", "→"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("faulty fleet report missing %q:\n%s", want, stdout)
		}
	}
	// Deterministic: the same flags render the same report.
	_, again, _ := capture(t,
		"-fleet", "4xResNet-50:4,2xBERT:2", "-iters", "4", "-mtbf", "2s", "-fault-seed", "1")
	if stdout != again {
		t.Error("two identical -mtbf runs rendered different reports")
	}
}
