package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestVersionHandshake pins the -V=full shape go vet's vettool handshake
// parses: one line, tool name first, a buildID=... field for cache keys.
func TestVersionHandshake(t *testing.T) {
	for _, flag := range []string{"-V=full", "-V"} {
		code, out, _ := runCLI(flag)
		if code != 0 {
			t.Fatalf("%s: exit %d", flag, code)
		}
		line := strings.TrimSpace(out)
		if strings.Count(out, "\n") != 1 {
			t.Errorf("%s printed %q, want a single line", flag, out)
		}
		fields := strings.Fields(line)
		if len(fields) < 3 || fields[1] != "version" {
			t.Errorf("%s printed %q, want `<tool> version ...`", flag, line)
		}
		if !strings.Contains(line, "buildID=") {
			t.Errorf("%s output missing buildID=: %q", flag, line)
		}
	}
}

// TestFlagsHandshake pins the -flags response: an empty JSON flag list.
func TestFlagsHandshake(t *testing.T) {
	code, out, _ := runCLI("-flags")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("-flags printed %q, want []", out)
	}
}

// TestStandaloneCleanPackage runs the standalone loader on a package known
// to be lint-clean and expects silence.
func TestStandaloneCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks packages via the toolchain")
	}
	code, out, stderr := runCLI("composable/internal/detmap")
	if code != 0 {
		t.Fatalf("exit %d, stdout %q, stderr %q", code, out, stderr)
	}
	if out != "" {
		t.Errorf("findings on a clean package:\n%s", out)
	}
}

// TestStandaloneBadPattern reports operational errors on stderr with
// exit 1, distinct from findings (exit 2).
func TestStandaloneBadPattern(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	code, _, stderr := runCLI("composable/internal/nosuchpackage")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "simlint:") {
		t.Errorf("stderr %q missing simlint: prefix", stderr)
	}
}
