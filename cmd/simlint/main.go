// Command simlint runs the repo's determinism and hot-path analyzers
// (internal/lint): nowallclock, maporder, hotalloc and goroutine.
//
// It speaks two protocols:
//
//   - Standalone: `simlint ./...` (or any go package patterns) loads the
//     packages via the toolchain and prints findings.
//
//   - Vet tool: `go vet -vettool=$(which simlint) ./...` — the go command
//     invokes simlint once per package with a .cfg file (the unitchecker
//     protocol), which adds build-cache integration and test-file
//     coverage. This is the mode CI's lint job uses.
//
// Exit status: 0 clean, 1 operational error, 2 findings (vet mode).
//
// Usage:
//
//	simlint ./...
//	simlint composable/internal/sim composable/internal/fabric
//	go build -o /tmp/simlint ./cmd/simlint && go vet -vettool=/tmp/simlint ./...
package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"composable/internal/lint"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the testable main: mode dispatch between the vet-tool protocol
// handshakes, the per-package .cfg protocol, and the standalone loader.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "-V":
			lint.PrintVersion(stdout)
			return 0
		case args[0] == "-flags":
			lint.PrintFlags(stdout)
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return lint.RunUnitChecker(args[0], lint.Analyzers(), stdout, stderr)
		}
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 1
	}
	diags, err := lint.RunAnalyzers(pkgs, lint.Analyzers()...)
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "simlint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		return 2
	}
	return 0
}
