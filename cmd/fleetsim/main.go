// Command fleetsim drives the fleet orchestrator: it generates a seeded
// job stream, schedules it onto a multi-host composable testbed under a
// chosen placement policy with dynamic GPU recomposition, and prints the
// per-job and fleet telemetry. Every run executes under the full fleet
// invariant probe set and fails loudly on any violation.
//
// Usage:
//
//	fleetsim -seed 1                          # seeded random fleet scenario
//	fleetsim -seed 1 -policy firstfit         # override the policy
//	fleetsim -seed 7 -hosts 3 -gpus 12 -warm  # override the fleet shape
//	fleetsim -seed 1 -pod                     # seeded multi-pod spine/leaf fleet
//	fleetsim -seed 1 -pods 4 -chassis-per-pod 3 -oversub 8
//	fleetsim -seed 1 -fingerprint             # print the telemetry fingerprint
//	fleetsim -seed 1 -report                  # trace-analytics report (attribution, percentiles)
//	fleetsim -seed 1 -slo "p99-wait<=1m util>=0.2"   # exit 3 on violation
//	fleetsim -list-policies
//
// The simulation is deterministic: the same flags always print the same
// telemetry, byte for byte.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"composable/internal/obs"
	"composable/internal/obs/analyze"
	"composable/internal/orchestrator"
	"composable/internal/scengen"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the testable main: parse flags, build the scenario, run it, and
// return the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fleetsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed        = fs.Int64("seed", 1, "scenario seed (job stream, fleet shape, policy)")
		policy      = fs.String("policy", "", "override the placement policy (see -list-policies)")
		hosts       = fs.Int("hosts", 0, "override the host count (1-3)")
		gpus        = fs.Int("gpus", 0, "override the chassis GPU inventory (2-16)")
		jobs        = fs.Int("jobs", 0, "trim the stream to this many jobs")
		attachMS    = fs.Int("attach-ms", -1, "override the per-device recomposition latency in ms (0 = free)")
		warm        = fs.Bool("warm", false, "preattach GPUs round-robin (a warm fleet) regardless of the seed's draw")
		pod         = fs.Bool("pod", false, "draw a pod-shaped (multi-chassis spine/leaf) scenario from the seed")
		pods        = fs.Int("pods", 0, "override the pod count (selects the pod shape, 1-4)")
		cpp         = fs.Int("chassis-per-pod", 0, "override the chassis per pod (selects the pod shape, 1-3)")
		oversub     = fs.Float64("oversub", 0, "override the spine oversubscription ratio (pod shape, 1-16)")
		faultSeed   = fs.Int64("fault-seed", 0, "arm a seeded fault schedule (failures + recovery; 0 = fault-free). See cmd/chaossim for the full fault driver.")
		fingerprint = fs.Bool("fingerprint", false, "print the canonical telemetry fingerprint after the report")
		listPol     = fs.Bool("list-policies", false, "list placement policies and exit")
		traceOut    = fs.String("trace", "", "write a Chrome trace_event JSON of the run to this file (load in Perfetto)")
		metricsOut  = fs.String("metrics", "", "write the sampled metrics series as CSV to this file")
		metricsIvMS = fs.Int("metrics-interval", 0, "metrics sampling interval in sim-time ms (default 100)")
		report      = fs.Bool("report", false, "print the trace-analytics report (attribution, percentiles) after the run")
		sloSpec     = fs.String("slo", "", `evaluate this SLO against the run and exit 3 on violation, e.g. "p99-wait<=1m util>=0.2"`)
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	slo, err := analyze.ParseSLO(*sloSpec)
	if err != nil {
		fmt.Fprintln(stderr, "fleetsim:", err)
		return 2
	}
	if *listPol {
		for _, p := range orchestrator.Policies() {
			fmt.Fprintf(stdout, "%s\n", p.Name())
		}
		return 0
	}

	sc := scengen.FleetFromSeed(*seed)
	if *pod {
		sc = scengen.PodFleetFromSeed(*seed)
	}
	if *policy != "" {
		if _, err := orchestrator.PolicyByName(*policy); err != nil {
			fmt.Fprintln(stderr, "fleetsim:", err)
			return 2
		}
		sc.Policy = *policy
	}
	if *hosts != 0 {
		sc.Hosts = *hosts
	}
	if *gpus != 0 {
		sc.GPUs = *gpus
	}
	if *pods != 0 {
		sc.Pods = *pods
		if sc.ChassisPerPod == 0 {
			sc.ChassisPerPod = 1
		}
	}
	if *cpp != 0 {
		sc.ChassisPerPod = *cpp
		if sc.Pods == 0 {
			sc.Pods = 1
		}
	}
	if *oversub != 0 {
		sc.Oversubscription = *oversub
	}
	if *jobs > 0 && *jobs < len(sc.Jobs) {
		sc.Jobs = sc.Jobs[:*jobs]
	}
	switch {
	case *attachMS == 0:
		sc.AttachLatency = -1 // free recomposition
	case *attachMS > 0:
		sc.AttachLatency = time.Duration(*attachMS) * time.Millisecond
	}
	if *warm {
		sc.Preattach = true
	}
	sc = scengen.SanitizeFleet(sc)

	var col *obs.Collector
	if *traceOut != "" || *metricsOut != "" || *report || !slo.Empty() {
		col = obs.NewCollector()
		col.SetInterval(time.Duration(*metricsIvMS) * time.Millisecond)
	}

	var out *scengen.FleetOutcome
	if *faultSeed != 0 {
		fc := scengen.SanitizeFaults(scengen.FaultScenario{
			Fleet: sc, Plan: scengen.PlanForFleet(*faultSeed, sc),
		})
		out, err = scengen.RunFaultyFleetObserved(fc, col)
	} else {
		out, err = scengen.RunFleetObserved(sc, col)
	}
	if err != nil {
		fmt.Fprintln(stderr, "fleetsim:", err)
		return 1
	}
	res := out.Result

	if *traceOut != "" {
		if err := writeFile(*traceOut, col.WriteTrace); err != nil {
			fmt.Fprintln(stderr, "fleetsim:", err)
			return 1
		}
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, col.WriteMetricsCSV); err != nil {
			fmt.Fprintln(stderr, "fleetsim:", err)
			return 1
		}
	}

	fmt.Fprintf(stdout, "fleetsim scenario %s (seed %d)\n\n", sc.ID(), sc.Seed)
	fmt.Fprintf(stdout, "%4s %-12s %3s %7s %5s %6s %10s %10s %10s %10s\n",
		"job", "workload", "g", "tenant", "host", "moves", "arrival", "wait", "runtime", "finish")
	for _, j := range res.Jobs {
		fmt.Fprintf(stdout, "%4d %-12s %3d %7d %5d %6d %10v %10v %10v %10v\n",
			j.ID, j.Workload, j.GPUs, j.Tenant, j.Host+1, j.Moves,
			j.Arrival.Round(time.Millisecond), j.Wait.Round(time.Millisecond),
			j.Runtime.Round(time.Millisecond), j.Finished.Round(time.Millisecond))
	}
	fmt.Fprintf(stdout, "\n%s", res.Summary())

	if err := out.Err(); err != nil {
		fmt.Fprintln(stderr, "fleetsim: INVARIANT VIOLATIONS:", err)
		return 1
	}
	fmt.Fprintf(stdout, "  invariants: all held (%d jobs, lifecycle+assignment+conservation)\n", len(res.Jobs))
	if col != nil {
		fmt.Fprintf(stdout, "\n%s", col.Summary())
	}

	var health *analyze.HealthReport
	if *report || !slo.Empty() {
		a := analyze.FromCollector(col).Analyze()
		stats := out.Stats()
		if !slo.Empty() {
			health = analyze.Evaluate(slo, a, stats)
		}
		fmt.Fprintln(stdout)
		if err := analyze.WriteText(stdout, a, &stats, health, 5); err != nil {
			fmt.Fprintln(stderr, "fleetsim:", err)
			return 1
		}
	}
	if *fingerprint {
		fmt.Fprintf(stdout, "\n--- fingerprint\n%s", out.Fingerprint)
	}
	if health != nil && !health.Healthy {
		return 3
	}
	return 0
}

// writeFile atomically-enough creates path and streams one exporter into
// it; shared by the -trace and -metrics flags here and in chaossim.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
