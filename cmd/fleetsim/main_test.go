package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestBadFlagRejected(t *testing.T) {
	code, _, _ := capture(t, "-no-such-flag")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	code, _, stderr := capture(t, "-policy", "wishful")
	if code != 2 || !strings.Contains(stderr, "unknown policy") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestListPolicies(t *testing.T) {
	code, stdout, _ := capture(t, "-list-policies")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"firstfit", "drawer", "bandwidth", "static"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("policy list missing %q:\n%s", want, stdout)
		}
	}
}

// TestSeededRunDeterministic is the CLI face of the acceptance criterion:
// the same seed must print byte-identical telemetry, fingerprint included.
func TestSeededRunDeterministic(t *testing.T) {
	code1, out1, err1 := capture(t, "-seed", "42", "-fingerprint")
	code2, out2, err2 := capture(t, "-seed", "42", "-fingerprint")
	if code1 != 0 || code2 != 0 {
		t.Fatalf("exits %d/%d, stderr %q %q", code1, code2, err1, err2)
	}
	if out1 != out2 {
		t.Fatalf("two runs of the same seed diverged:\n--- first\n%s--- second\n%s", out1, out2)
	}
	if !strings.Contains(out1, "--- fingerprint") || !strings.Contains(out1, "makespan=") {
		t.Errorf("fingerprint section missing:\n%s", out1)
	}
}

func TestOverridesShapeTheRun(t *testing.T) {
	code, stdout, stderr := capture(t,
		"-seed", "3", "-policy", "firstfit", "-hosts", "2", "-gpus", "6", "-jobs", "3", "-attach-ms", "0")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "fleet-h2g6-firstfit") {
		t.Errorf("overrides not reflected in scenario ID:\n%s", stdout)
	}
	if !strings.Contains(stdout, "invariants: all held") {
		t.Errorf("invariant status missing:\n%s", stdout)
	}
	// 3 jobs requested → job rows 0..2 and no more.
	if strings.Contains(stdout, "\n   3 ") {
		t.Errorf("stream not trimmed to 3 jobs:\n%s", stdout)
	}
}

// TestPodRunDeterministic extends the CLI byte-identity criterion to the
// pod shape: a seeded multi-pod spine/leaf scenario must print identical
// telemetry, fingerprint included, on every run.
func TestPodRunDeterministic(t *testing.T) {
	code1, out1, err1 := capture(t, "-seed", "11", "-pod", "-fingerprint")
	code2, out2, err2 := capture(t, "-seed", "11", "-pod", "-fingerprint")
	if code1 != 0 || code2 != 0 {
		t.Fatalf("exits %d/%d, stderr %q %q", code1, code2, err1, err2)
	}
	if out1 != out2 {
		t.Fatalf("two pod runs of the same seed diverged:\n--- first\n%s--- second\n%s", out1, out2)
	}
	if !strings.Contains(out1, "pods=") {
		t.Errorf("pod fingerprint missing hierarchy header:\n%s", out1)
	}
}

func TestPodShapeOverrides(t *testing.T) {
	code, stdout, stderr := capture(t,
		"-seed", "3", "-pods", "2", "-chassis-per-pod", "2", "-oversub", "4", "-gpus", "4", "-hosts", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "p2x2o4-") {
		t.Errorf("pod shape not reflected in scenario ID:\n%s", stdout)
	}
	if !strings.Contains(stdout, "invariants: all held") {
		t.Errorf("invariant status missing:\n%s", stdout)
	}
}

func TestStaticPolicyRuns(t *testing.T) {
	code, stdout, stderr := capture(t, "-seed", "5", "-policy", "static")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "policy static") || !strings.Contains(stdout, "0 recompositions") {
		t.Errorf("static run should report zero recompositions:\n%s", stdout)
	}
}

// TestTraceAndMetricsDeterministic extends the byte-identity criterion
// to the observability exports: two runs with -trace and -metrics write
// identical files, the trace parses as Chrome trace_event JSON, and it
// carries spans from every instrumented layer.
func TestTraceAndMetricsDeterministic(t *testing.T) {
	dir := t.TempDir()
	p1, p2 := filepath.Join(dir, "t1.json"), filepath.Join(dir, "t2.json")
	m1, m2 := filepath.Join(dir, "m1.csv"), filepath.Join(dir, "m2.csv")
	args := []string{"-seed", "1", "-fault-seed", "3"}
	code1, out1, err1 := capture(t, append(args, "-trace", p1, "-metrics", m1)...)
	code2, out2, err2 := capture(t, append(args, "-trace", p2, "-metrics", m2)...)
	if code1 != 0 || code2 != 0 {
		t.Fatalf("exits %d/%d, stderr %q %q", code1, code2, err1, err2)
	}
	if out1 != out2 {
		t.Fatal("observed runs printed diverging reports")
	}
	if !strings.Contains(out1, "obs: ") {
		t.Errorf("observed run missing the obs summary:\n%s", out1)
	}
	tr1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tr1, tr2) {
		t.Error("-trace files differ between identical runs")
	}
	for _, pair := range [2]string{m1, m2} {
		if _, err := os.Stat(pair); err != nil {
			t.Fatal(err)
		}
	}
	c1, err := os.ReadFile(m1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := os.ReadFile(m2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1, c2) {
		t.Error("-metrics files differ between identical runs")
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Cat string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tr1, &doc); err != nil {
		t.Fatalf("-trace output is not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" || e.Ph == "i" {
			seen[e.Cat] = true
		}
	}
	for _, cat := range []string{"sim", "fabric", "train", "orchestrator", "faults"} {
		if !seen[cat] {
			t.Errorf("trace has no spans on the %q track", cat)
		}
	}
	if !strings.HasPrefix(string(c1), "time_s,") {
		t.Errorf("-metrics CSV header malformed: %q", strings.SplitN(string(c1), "\n", 2)[0])
	}
}

// TestTracingDoesNotPerturbTheRun pins the observer-effect contract: the
// fingerprint of an observed run equals the unobserved one.
func TestTracingDoesNotPerturbTheRun(t *testing.T) {
	dir := t.TempDir()
	_, plain, _ := capture(t, "-seed", "7", "-fingerprint")
	_, traced, _ := capture(t, "-seed", "7", "-fingerprint",
		"-trace", filepath.Join(dir, "t.json"), "-metrics-interval", "50")
	cut := func(s string) string {
		i := strings.Index(s, "--- fingerprint")
		if i < 0 {
			t.Fatalf("no fingerprint section:\n%s", s)
		}
		return s[i:]
	}
	if cut(plain) != cut(traced) {
		t.Fatal("tracing changed the run's fingerprint")
	}
}

func TestFaultSeedArmsTheFailureEngine(t *testing.T) {
	args := []string{"-seed", "1", "-fault-seed", "2", "-fingerprint"}
	code1, out1, stderr := capture(t, args...)
	if code1 != 0 {
		t.Fatalf("exit %d, stderr %q", code1, stderr)
	}
	if !strings.Contains(out1, "faults:") {
		t.Fatalf("faulty run summary missing fault telemetry:\n%s", out1)
	}
	_, out2, _ := capture(t, args...)
	if out1 != out2 {
		t.Fatal("two identical faulty fleetsim runs diverged")
	}
	_, clean, _ := capture(t, "-seed", "1", "-fingerprint")
	if clean == out1 {
		t.Fatal("-fault-seed did not change the run")
	}
}
