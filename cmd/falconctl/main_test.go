package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func statePath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "state.json")
}

func mustRun(t *testing.T, args ...string) string {
	t.Helper()
	code, stdout, stderr := capture(t, args...)
	if code != 0 {
		t.Fatalf("falconctl %v: exit %d, stderr %q", args, code, stderr)
	}
	return stdout
}

func TestUsageErrors(t *testing.T) {
	state := statePath(t)
	mustRun(t, "-f", state, "init")
	for _, args := range [][]string{
		nil,                              // no args
		{"-f", "x.json"},                 // no command
		{"x.json", "init", "extra"},      // missing -f
		{"-f", state, "frobnicate"},      // unknown command
		{"-f", state, "cable", "only"},   // wrong arity
		{"-f", state, "attach", "0", "3"}, // wrong arity
	} {
		code, _, stderr := capture(t, args...)
		if code != 2 || !strings.Contains(stderr, "usage: falconctl") {
			t.Errorf("falconctl %v: exit %d, stderr %q", args, code, stderr)
		}
	}
}

func TestMissingStateFileIsFatal(t *testing.T) {
	code, _, stderr := capture(t, "-f", statePath(t), "topology")
	if code != 1 || !strings.Contains(stderr, "init' first") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestBadNumberIsFatal(t *testing.T) {
	state := statePath(t)
	mustRun(t, "-f", state, "init")
	code, _, stderr := capture(t, "-f", state, "mode", "zero", "advanced")
	if code != 1 || !strings.Contains(stderr, "bad number") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

// TestLifecycleRoundTrip scripts a full chassis build through the state
// file — init, cable, mode, install, attach, reassign — and checks each
// step persists for the next invocation, exactly how an admin scripts the
// GUI's workflow.
func TestLifecycleRoundTrip(t *testing.T) {
	state := statePath(t)
	mustRun(t, "-f", state, "init")
	mustRun(t, "-f", state, "cable", "H1", "host1")
	mustRun(t, "-f", state, "cable", "H2", "host2")
	mustRun(t, "-f", state, "mode", "0", "advanced")
	mustRun(t, "-f", state, "install", "0", "3", "GPU", "Tesla V100-PCIE-16GB")
	mustRun(t, "-f", state, "attach", "0", "3", "H1")

	if sum := mustRun(t, "-f", state, "summary"); !strings.Contains(sum, "GPUs 1") || !strings.Contains(sum, "attached 1") {
		t.Errorf("summary after attach: %q", sum)
	}
	// Dynamic re-allocation works because drawer 0 is in advanced mode.
	mustRun(t, "-f", state, "reassign", "0", "3", "H2")
	topo := mustRun(t, "-f", state, "topology")
	if !strings.Contains(topo, "H2 (host2)") {
		t.Errorf("topology after reassign:\n%s", topo)
	}
	events := mustRun(t, "-f", state, "events")
	if !strings.Contains(events, "configuration imported") {
		t.Errorf("event log:\n%s", events)
	}

	// Detach + remove round-trips back to an empty chassis.
	mustRun(t, "-f", state, "detach", "0", "3")
	mustRun(t, "-f", state, "remove", "0", "3")
	if sum := mustRun(t, "-f", state, "summary"); !strings.Contains(sum, "GPUs 0") {
		t.Errorf("summary after remove: %q", sum)
	}
}

func TestModeConstraintSurfacesAsError(t *testing.T) {
	state := statePath(t)
	mustRun(t, "-f", state, "init")
	mustRun(t, "-f", state, "cable", "H1", "host1")
	mustRun(t, "-f", state, "install", "0", "0", "GPU", "V100")
	// Standard mode: reassign requires advanced mode.
	code, _, stderr := capture(t, "-f", state, "reassign", "0", "0", "H1")
	if code != 1 || !strings.Contains(stderr, "advanced mode") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestReadOnlyCommandsDoNotRewriteState(t *testing.T) {
	state := statePath(t)
	mustRun(t, "-f", state, "init")
	before, err := os.ReadFile(state)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(state, before, 0o444); err != nil {
		t.Fatal(err)
	}
	// A read-only state file breaks mutations but not views.
	mustRun(t, "-f", state, "topology")
	mustRun(t, "-f", state, "summary")
	mustRun(t, "-f", state, "sensors")
}
