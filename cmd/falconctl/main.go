// Command falconctl is the chassis management CLI: the command-line analog
// of the Falcon 4016 management GUI (§II-B). It operates on a chassis
// state file (JSON, the same format the chassis import/export uses), so
// admins can script configuration changes and inspect state.
//
// Usage:
//
//	falconctl -f state.json init                         # new empty chassis
//	falconctl -f state.json cable H1 host1
//	falconctl -f state.json mode 0 advanced
//	falconctl -f state.json install 0 3 GPU "Tesla V100-PCIE-16GB"
//	falconctl -f state.json attach 0 3 H1
//	falconctl -f state.json detach 0 3
//	falconctl -f state.json topology
//	falconctl -f state.json summary
//	falconctl -f state.json sensors
package main

import (
	"fmt"
	"io"
	"os"
	"strconv"

	"composable/internal/falcon"
)

const usageText = `usage: falconctl -f <state.json> <command> [args]
commands:
  init                                   create an empty chassis
  cable <port> <host>                    cable a host to a port (H1-H4)
  mode <drawer> <mode>                   standard-1host | standard-2host | advanced
  install <drawer> <slot> <type> <model> seat a device (GPU|NVMe|NIC|Custom)
  remove <drawer> <slot>                 unseat a device
  attach <drawer> <slot> <port>          attach device to a host port
  detach <drawer> <slot>                 detach device
  reassign <drawer> <slot> <port>        dynamic re-allocation (advanced mode)
  topology                               print the topology view
  summary                                print the resource list counters
  sensors                                print BMC sensor readings
  events                                 print the event log`

// usageError aborts command handling with exit code 2.
type usageError struct{}

func (usageError) Error() string { return "usage" }

// cmdError aborts command handling with exit code 1.
type cmdError struct{ err error }

func (e cmdError) Error() string { return e.err.Error() }

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the testable main: it executes one falconctl command against the
// state file and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) (code int) {
	defer func() {
		switch r := recover().(type) {
		case nil:
		case usageError:
			fmt.Fprintln(stderr, usageText)
			code = 2
		case cmdError:
			fmt.Fprintln(stderr, "falconctl:", r.err)
			code = 1
		default:
			panic(r)
		}
	}()

	if len(args) < 3 || args[0] != "-f" {
		panic(usageError{})
	}
	stateFile := args[1]
	cmd := args[2]
	rest := args[3:]

	ch := falcon.New("falcon-1")
	if cmd != "init" {
		data, err := os.ReadFile(stateFile)
		if err != nil {
			panic(cmdError{fmt.Errorf("reading state: %w (run 'falconctl -f %s init' first)", err, stateFile)})
		}
		if err := ch.ImportConfig(data); err != nil {
			panic(cmdError{err})
		}
	}

	save := true
	switch cmd {
	case "init":
		// Nothing: empty chassis is serialized below.
	case "cable":
		need(rest, 2)
		check(ch.CableHost(rest[0], rest[1]))
	case "mode":
		need(rest, 2)
		check(ch.SetMode(atoi(rest[0]), falcon.Mode(rest[1])))
	case "install":
		need(rest, 4)
		ref := falcon.SlotRef{Drawer: atoi(rest[0]), Slot: atoi(rest[1])}
		dev := falcon.DeviceInfo{
			ID:    fmt.Sprintf("dev-%d-%d", ref.Drawer, ref.Slot),
			Type:  falcon.DeviceType(rest[2]),
			Model: rest[3], LinkGen: 4, Lanes: 16,
		}
		check(ch.Install(ref, dev))
	case "remove":
		need(rest, 2)
		check(ch.Remove(falcon.SlotRef{Drawer: atoi(rest[0]), Slot: atoi(rest[1])}))
	case "attach":
		need(rest, 3)
		check(ch.Attach(falcon.SlotRef{Drawer: atoi(rest[0]), Slot: atoi(rest[1])}, rest[2]))
	case "detach":
		need(rest, 2)
		check(ch.Detach(falcon.SlotRef{Drawer: atoi(rest[0]), Slot: atoi(rest[1])}))
	case "reassign":
		need(rest, 3)
		check(ch.Reassign(falcon.SlotRef{Drawer: atoi(rest[0]), Slot: atoi(rest[1])}, rest[2]))
	case "topology":
		fmt.Fprint(stdout, ch.Topology())
		save = false
	case "summary":
		s := ch.Summary()
		fmt.Fprintf(stdout, "GPUs %d  NVMe %d  NICs %d  Custom %d | attached %d free %d | host links %d\n",
			s.GPUs, s.NVMes, s.NICs, s.Custom, s.Attached, s.Free, s.HostLinks)
		save = false
	case "sensors":
		r := ch.Sensors()
		fmt.Fprintf(stdout, "chassis %.1fC  drawer0 %.1fC  drawer1 %.1fC  fans %.0f%%\n",
			r.ChassisTempC, r.DrawerTempC[0], r.DrawerTempC[1], r.FanDutyPct)
		save = false
	case "events":
		for _, e := range ch.Events() {
			fmt.Fprintf(stdout, "[%s] %s\n", e.Severity, e.Message)
		}
		save = false
	default:
		panic(usageError{})
	}

	if save {
		data, err := ch.ExportConfig()
		if err != nil {
			panic(cmdError{err})
		}
		if err := os.WriteFile(stateFile, data, 0o644); err != nil {
			panic(cmdError{err})
		}
	}
	return 0
}

func need(rest []string, n int) {
	if len(rest) != n {
		panic(usageError{})
	}
}

func atoi(s string) int {
	v, err := strconv.Atoi(s)
	if err != nil {
		panic(cmdError{fmt.Errorf("bad number %q", s)})
	}
	return v
}

func check(err error) {
	if err != nil {
		panic(cmdError{err})
	}
}
