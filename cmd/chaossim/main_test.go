package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestBadFlagsRejected(t *testing.T) {
	if code, _, _ := capture(t, "-no-such-flag"); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
	if code, _, stderr := capture(t, "-policy", "nope"); code != 2 || !strings.Contains(stderr, "unknown policy") {
		t.Fatalf("bad policy: exit %d, stderr %q", code, stderr)
	}
}

func TestSeededRunReportsFaultsAndInvariants(t *testing.T) {
	code, stdout, stderr := capture(t, "-seed", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	for _, want := range []string{"chaossim scenario", "fault plan:", "invariants: all held"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("report missing %q:\n%s", want, stdout)
		}
	}
}

func TestRunTwiceByteIdentical(t *testing.T) {
	args := []string{"-seed", "3", "-fingerprint"}
	code1, out1, stderr1 := capture(t, args...)
	code2, out2, _ := capture(t, args...)
	if code1 != 0 || code2 != 0 {
		t.Fatalf("exits %d/%d, stderr %q", code1, code2, stderr1)
	}
	if out1 != out2 {
		t.Fatalf("two identical chaossim runs diverged:\n--- first\n%s--- second\n%s", out1, out2)
	}
	if !strings.Contains(out1, "--- fingerprint") {
		t.Fatalf("missing fingerprint section:\n%s", out1)
	}
}

// TestPodRunTwiceByteIdentical extends run-twice byte-identity to the
// pod shape, where the pod-scoped fault kinds (pod power, spine link)
// are in the draw.
func TestPodRunTwiceByteIdentical(t *testing.T) {
	args := []string{"-seed", "5", "-pod", "-fingerprint"}
	code1, out1, stderr1 := capture(t, args...)
	code2, out2, _ := capture(t, args...)
	if code1 != 0 || code2 != 0 {
		t.Fatalf("exits %d/%d, stderr %q", code1, code2, stderr1)
	}
	if out1 != out2 {
		t.Fatalf("two identical pod chaossim runs diverged:\n--- first\n%s--- second\n%s", out1, out2)
	}
	if !strings.Contains(out1, "pods=") {
		t.Errorf("pod fingerprint missing hierarchy header:\n%s", out1)
	}
}

func TestFaultSeedOverrideChangesSchedule(t *testing.T) {
	_, base, _ := capture(t, "-seed", "1", "-fingerprint")
	code, alt, stderr := capture(t, "-seed", "1", "-fault-seed", "99", "-fingerprint")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if base == alt {
		t.Fatal("-fault-seed override did not change the run")
	}
}

// TestSomeSeedExercisesRecovery guards against the driver silently
// becoming fault-free: across a handful of seeds at least one run must
// show a kill-and-recover (or fail) in the report.
func TestSomeSeedExercisesRecovery(t *testing.T) {
	for _, seed := range []string{"1", "2", "3", "4", "5", "6", "7", "8"} {
		code, stdout, stderr := capture(t, "-seed", seed)
		if code != 0 {
			t.Fatalf("seed %s: exit %d, stderr %q", seed, code, stderr)
		}
		if strings.Contains(stdout, "recovered:") || strings.Contains(stdout, "FAILED:") {
			return
		}
	}
	t.Fatal("no seed in 1..8 exercised the recovery path")
}

// TestTraceRunTwiceByteIdentical extends the byte-identity criterion to
// the observability exports: two runs with -trace/-metrics write
// identical valid files.
func TestTraceRunTwiceByteIdentical(t *testing.T) {
	dir := t.TempDir()
	p1, p2 := filepath.Join(dir, "t1.json"), filepath.Join(dir, "t2.json")
	m1, m2 := filepath.Join(dir, "m1.csv"), filepath.Join(dir, "m2.csv")
	code1, out1, err1 := capture(t, "-seed", "2", "-trace", p1, "-metrics", m1)
	code2, out2, err2 := capture(t, "-seed", "2", "-trace", p2, "-metrics", m2)
	if code1 != 0 || code2 != 0 {
		t.Fatalf("exits %d/%d, stderr %q %q", code1, code2, err1, err2)
	}
	if out1 != out2 {
		t.Fatal("observed runs printed diverging reports")
	}
	if !strings.Contains(out1, "obs: ") {
		t.Errorf("observed run missing the obs summary:\n%s", out1)
	}
	tr1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tr1, tr2) {
		t.Error("-trace files differ between identical runs")
	}
	c1, err := os.ReadFile(m1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := os.ReadFile(m2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1, c2) {
		t.Error("-metrics files differ between identical runs")
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(tr1, &doc); err != nil {
		t.Fatalf("-trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace carries no events")
	}
}
