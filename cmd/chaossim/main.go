// Command chaossim drives the fleet orchestrator through seeded fault
// scenarios: the fleetsim experience with the failure engine armed. It
// generates a fleet scenario and a fault schedule from seeds, runs the
// stream with checkpoint/restart recovery and GPU blacklisting, and
// prints the fault plan, the per-job recovery telemetry, the fault
// timeline, and the fleet summary. Every run executes under the full
// fault-aware invariant probe set and fails loudly on any violation.
//
// Usage:
//
//	chaossim -seed 1                      # seeded fleet + seeded faults
//	chaossim -seed 1 -fault-seed 9        # same fleet, different failures
//	chaossim -seed 1 -policy static       # recovery under a fixed partition
//	chaossim -seed 1 -retries 1           # tighter retry budget
//	chaossim -seed 1 -pod                 # pod-shaped fleet, pod/spine faults in play
//	chaossim -seed 1 -fingerprint         # canonical fingerprint (faults included)
//	chaossim -seed 1 -report              # trace-analytics report (attribution, percentiles)
//	chaossim -seed 1 -slo "p99-wait<=1m max-failed<=0"   # exit 3 on violation
//
// The simulation is deterministic: the same flags always print the same
// report, byte for byte — the chaossim-smoke CI job diffs two runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"composable/internal/obs"
	"composable/internal/obs/analyze"
	"composable/internal/orchestrator"
	"composable/internal/scengen"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the testable main: parse flags, build the scenario, run it, and
// return the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("chaossim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed        = fs.Int64("seed", 1, "fleet scenario seed (job stream, fleet shape, policy)")
		faultSeed   = fs.Int64("fault-seed", 0, "fault schedule seed (0 = derive from -seed)")
		policy      = fs.String("policy", "", "override the placement policy")
		hosts       = fs.Int("hosts", 0, "override the host count (1-3)")
		gpus        = fs.Int("gpus", 0, "override the chassis GPU inventory (2-16)")
		pod         = fs.Bool("pod", false, "draw a pod-shaped (multi-chassis spine/leaf) scenario from the seed")
		pods        = fs.Int("pods", 0, "override the pod count (selects the pod shape, 1-4)")
		cpp         = fs.Int("chassis-per-pod", 0, "override the chassis per pod (selects the pod shape, 1-3)")
		oversub     = fs.Float64("oversub", 0, "override the spine oversubscription ratio (pod shape, 1-16)")
		retries     = fs.Int("retries", 0, "per-job retry budget (0 = default, negative = none)")
		fingerprint = fs.Bool("fingerprint", false, "print the canonical telemetry fingerprint after the report")
		traceOut    = fs.String("trace", "", "write a Chrome trace_event JSON of the run to this file (load in Perfetto)")
		metricsOut  = fs.String("metrics", "", "write the sampled metrics series as CSV to this file")
		metricsIvMS = fs.Int("metrics-interval", 0, "metrics sampling interval in sim-time ms (default 100)")
		report      = fs.Bool("report", false, "print the trace-analytics report (attribution, percentiles) after the run")
		sloSpec     = fs.String("slo", "", `evaluate this SLO against the run and exit 3 on violation, e.g. "p99-wait<=1m max-failed<=0"`)
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	slo, err := analyze.ParseSLO(*sloSpec)
	if err != nil {
		fmt.Fprintln(stderr, "chaossim:", err)
		return 2
	}

	sc := scengen.FaultsFromSeed(*seed)
	podShaped := *pod
	if *pod {
		sc.Fleet = scengen.PodFleetFromSeed(*seed)
	}
	if *policy != "" {
		if _, err := orchestrator.PolicyByName(*policy); err != nil {
			fmt.Fprintln(stderr, "chaossim:", err)
			return 2
		}
		sc.Fleet.Policy = *policy
	}
	if *hosts != 0 {
		sc.Fleet.Hosts = *hosts
	}
	if *gpus != 0 {
		sc.Fleet.GPUs = *gpus
	}
	if *pods != 0 {
		sc.Fleet.Pods = *pods
		if sc.Fleet.ChassisPerPod == 0 {
			sc.Fleet.ChassisPerPod = 1
		}
		podShaped = true
	}
	if *cpp != 0 {
		sc.Fleet.ChassisPerPod = *cpp
		if sc.Fleet.Pods == 0 {
			sc.Fleet.Pods = 1
		}
		podShaped = true
	}
	if *oversub != 0 {
		sc.Fleet.Oversubscription = *oversub
	}
	switch {
	case *faultSeed != 0:
		sc.Plan = scengen.PlanForFleet(*faultSeed, sc.Fleet)
	case podShaped:
		// The degenerate draw knows nothing about pods or spine links;
		// re-derive the schedule against the pod-shaped bounds so the two
		// pod-scoped fault kinds are in play.
		sc.Plan = scengen.PlanForFleet(*seed, sc.Fleet)
	}
	if *retries != 0 {
		sc.MaxRetries = *retries
	}
	sc = scengen.SanitizeFaults(sc)

	fmt.Fprintf(stdout, "chaossim scenario %s (seed %d)\n\nfault plan:\n", sc.ID(), *seed)
	if len(sc.Plan.Events) == 0 {
		fmt.Fprintf(stdout, "  (empty — fault-free run)\n")
	}
	for _, e := range sc.Plan.Events {
		fmt.Fprintf(stdout, "  %v\n", e)
	}

	var col *obs.Collector
	if *traceOut != "" || *metricsOut != "" || *report || !slo.Empty() {
		col = obs.NewCollector()
		col.SetInterval(time.Duration(*metricsIvMS) * time.Millisecond)
	}

	out, err := scengen.RunFaultyFleetObserved(sc, col)
	if err != nil {
		fmt.Fprintln(stderr, "chaossim:", err)
		return 1
	}
	res := out.Result

	if *traceOut != "" {
		if err := writeFile(*traceOut, col.WriteTrace); err != nil {
			fmt.Fprintln(stderr, "chaossim:", err)
			return 1
		}
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, col.WriteMetricsCSV); err != nil {
			fmt.Fprintln(stderr, "chaossim:", err)
			return 1
		}
	}

	fmt.Fprintf(stdout, "\n%4s %-12s %3s %5s %8s %6s %10s %10s  %s\n",
		"job", "workload", "g", "host", "retries", "ckpt", "lost", "finish", "state")
	for _, j := range res.Jobs {
		state := "done"
		if j.Failed {
			state = "FAILED: " + j.FailureCause
		} else if j.Retries > 0 {
			state = "recovered: " + j.FailureCause
		}
		fmt.Fprintf(stdout, "%4d %-12s %3d %5d %8d %4dep %8.1fGs %10v  %s\n",
			j.ID, j.Workload, j.GPUs, j.Host+1, j.Retries, j.EpochsDone,
			j.LostGPUSeconds, j.Finished.Round(time.Millisecond), state)
	}
	fmt.Fprintf(stdout, "\n%s", res.Summary())
	if res.Track != nil && res.Track.Len() > 0 && res.Makespan > 0 {
		fmt.Fprintf(stdout, "  fault timeline [0, %v]: %s\n",
			res.Makespan.Round(time.Millisecond), res.Track.Timeline(48, res.Makespan))
	}

	if err := out.Err(); err != nil {
		fmt.Fprintln(stderr, "chaossim: INVARIANT VIOLATIONS:", err)
		return 1
	}
	fmt.Fprintf(stdout, "  invariants: all held (%d jobs, %d faults; lifecycle+assignment+conservation+lost-work)\n",
		len(res.Jobs), res.Faults)
	if col != nil {
		fmt.Fprintf(stdout, "\n%s", col.Summary())
	}

	var health *analyze.HealthReport
	if *report || !slo.Empty() {
		a := analyze.FromCollector(col).Analyze()
		stats := out.Stats()
		if !slo.Empty() {
			health = analyze.Evaluate(slo, a, stats)
		}
		fmt.Fprintln(stdout)
		if err := analyze.WriteText(stdout, a, &stats, health, 5); err != nil {
			fmt.Fprintln(stderr, "chaossim:", err)
			return 1
		}
	}
	if *fingerprint {
		fmt.Fprintf(stdout, "\n--- fingerprint\n%s", out.Fingerprint)
	}
	if health != nil && !health.Healthy {
		return 3
	}
	return 0
}

// writeFile creates path and streams one exporter into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
