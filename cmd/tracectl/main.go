// Command tracectl is the trace-analytics front end: it analyzes an
// exported Chrome trace (obs.WriteTrace output) or runs a seeded
// scenario itself, then prints per-job time attribution, critical
// paths, fleet blame totals, exact-percentile histograms, and an SLO
// health verdict.
//
// Usage:
//
//	tracectl -file trace.json                 # analyze an exported trace
//	tracectl -seed 1                          # run + analyze a seeded fleet scenario
//	tracectl -seed 1 -fault-seed 3            # ... with a seeded fault schedule
//	tracectl -seed 1 -pod                     # ... pod-shaped spine/leaf fleet
//	tracectl -seed 1 -slo "p99-wait<=1m util>=0.2"
//	tracectl -file trace.json -json -top 10
//
// Output is deterministic: the same input always prints the same
// bytes. Exit codes: 0 healthy/no SLO, 1 run or I/O error, 2 bad
// flags, 3 SLO violated.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"composable/internal/obs"
	"composable/internal/obs/analyze"
	"composable/internal/scengen"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the testable main: parse flags, obtain a trace (file or
// fresh scenario run), analyze, render, and score the SLO.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracectl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		file      = fs.String("file", "", "analyze this exported Chrome trace instead of running a scenario")
		seed      = fs.Int64("seed", 1, "scenario seed when running (ignored with -file)")
		pod       = fs.Bool("pod", false, "draw a pod-shaped (multi-chassis spine/leaf) scenario from the seed")
		faultSeed = fs.Int64("fault-seed", 0, "arm a seeded fault schedule (0 = fault-free)")
		jobs      = fs.Int("jobs", 0, "trim the scenario stream to this many jobs")
		topN      = fs.Int("top", 5, "show the N slowest jobs")
		sloSpec   = fs.String("slo", "", `declarative SLO, e.g. "p99-wait<=800ms goodput>=2.5 util>=0.4 max-failed<=0"`)
		jsonOut   = fs.Bool("json", false, "emit the machine-readable JSON report instead of text")
		outPath   = fs.String("o", "", "write the report to this file instead of stdout")
		emitTrace = fs.String("emit-trace", "", "in run mode, also write the raw Chrome trace to this file (re-analyzable via -file)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	slo, err := analyze.ParseSLO(*sloSpec)
	if err != nil {
		fmt.Fprintln(stderr, "tracectl:", err)
		return 2
	}

	var tr *analyze.Trace
	var stats *analyze.FleetStats
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(stderr, "tracectl:", err)
			return 1
		}
		tr, err = analyze.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(stderr, "tracectl:", err)
			return 1
		}
		// Run-level metrics (goodput, utilization) are not recoverable
		// from a bare trace; SLO clauses on them will report skipped.
	} else {
		sc := scengen.FleetFromSeed(*seed)
		if *pod {
			sc = scengen.PodFleetFromSeed(*seed)
		}
		if *jobs > 0 && *jobs < len(sc.Jobs) {
			sc.Jobs = sc.Jobs[:*jobs]
		}
		sc = scengen.SanitizeFleet(sc)
		col := obs.NewCollector()
		var out *scengen.FleetOutcome
		if *faultSeed != 0 {
			fc := scengen.SanitizeFaults(scengen.FaultScenario{
				Fleet: sc, Plan: scengen.PlanForFleet(*faultSeed, sc),
			})
			out, err = scengen.RunFaultyFleetObserved(fc, col)
		} else {
			out, err = scengen.RunFleetObserved(sc, col)
		}
		if err != nil {
			fmt.Fprintln(stderr, "tracectl:", err)
			return 1
		}
		if err := out.Err(); err != nil {
			fmt.Fprintln(stderr, "tracectl: INVARIANT VIOLATIONS:", err)
			return 1
		}
		tr = analyze.FromCollector(col)
		s := out.Stats()
		stats = &s
		if *emitTrace != "" {
			f, err := os.Create(*emitTrace)
			if err != nil {
				fmt.Fprintln(stderr, "tracectl:", err)
				return 1
			}
			if err := col.WriteTrace(f); err != nil {
				f.Close()
				fmt.Fprintln(stderr, "tracectl:", err)
				return 1
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, "tracectl:", err)
				return 1
			}
		}
	}

	a := tr.Analyze()
	var health *analyze.HealthReport
	if !slo.Empty() {
		st := analyze.FleetStats{}
		if stats != nil {
			st = *stats
		}
		health = analyze.Evaluate(slo, a, st)
	}

	w := io.Writer(stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(stderr, "tracectl:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if *jsonOut {
		b, err := analyze.JSONReport(a, stats, health, *topN)
		if err != nil {
			fmt.Fprintln(stderr, "tracectl:", err)
			return 1
		}
		if _, err := w.Write(b); err != nil {
			fmt.Fprintln(stderr, "tracectl:", err)
			return 1
		}
	} else if err := analyze.WriteText(w, a, stats, health, *topN); err != nil {
		fmt.Fprintln(stderr, "tracectl:", err)
		return 1
	}
	if health != nil && !health.Healthy {
		return 3
	}
	return 0
}
