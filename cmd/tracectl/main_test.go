package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestRunTwiceByteIdentical pins the CLI's determinism contract: the
// same flags produce the same bytes, in both text and JSON modes,
// for fault-free and faulty scenarios.
func TestRunTwiceByteIdentical(t *testing.T) {
	for _, args := range [][]string{
		{"-seed", "1"},
		{"-seed", "1", "-fault-seed", "3", "-slo", "p99-wait<=24h max-failed<=100"},
		{"-seed", "2", "-json", "-top", "3"},
	} {
		c1, o1, e1 := runCLI(t, args...)
		c2, o2, e2 := runCLI(t, args...)
		if c1 != c2 || o1 != o2 || e1 != e2 {
			t.Errorf("args %v: two runs diverge (codes %d/%d)", args, c1, c2)
		}
		if c1 != 0 {
			t.Errorf("args %v: exit %d, stderr: %s", args, c1, e1)
		}
	}
}

// TestFileModeMatchesRunMode pins the two input paths end to end: a
// trace written by one run, re-analyzed via -file, must yield the
// same JSON report as the live run (minus the run-level stats block,
// which a bare trace cannot carry).
func TestFileModeMatchesRunMode(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")

	// Produce the trace with the obs exporter via a scenario run.
	writeScenarioTrace(t, trace)

	code, fromFile, stderr := runCLI(t, "-file", trace, "-json", "-top", "4")
	if code != 0 {
		t.Fatalf("file mode exit %d: %s", code, stderr)
	}
	code, live, stderr := runCLI(t, "-seed", "1", "-fault-seed", "3", "-json", "-top", "4")
	if code != 0 {
		t.Fatalf("run mode exit %d: %s", code, stderr)
	}

	var fileDoc, liveDoc map[string]any
	if err := json.Unmarshal([]byte(fromFile), &fileDoc); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(live), &liveDoc); err != nil {
		t.Fatal(err)
	}
	// Run mode additionally knows goodput/utilization.
	if _, ok := liveDoc["stats"]; !ok {
		t.Error("run mode report lacks fleet stats")
	}
	delete(liveDoc, "stats")
	fb, _ := json.Marshal(fileDoc)
	lb, _ := json.Marshal(liveDoc)
	if !bytes.Equal(fb, lb) {
		t.Errorf("file-mode analysis diverges from run mode:\nfile: %s\nlive: %s", fb, lb)
	}
}

// TestSLOVerdictExitCodes pins the CI-facing contract: a violated SLO
// exits 3 and prints FAIL; an unparsable SLO exits 2.
func TestSLOVerdictExitCodes(t *testing.T) {
	code, out, _ := runCLI(t, "-seed", "1", "-slo", "p99-latency<=1ns")
	if code != 3 {
		t.Errorf("violated SLO: exit %d, want 3", code)
	}
	if !strings.Contains(out, "slo: FAIL") {
		t.Errorf("report lacks FAIL verdict:\n%s", out)
	}

	code, _, stderr := runCLI(t, "-seed", "1", "-slo", "nonsense<=1")
	if code != 2 || !strings.Contains(stderr, "unknown metric") {
		t.Errorf("bad SLO: exit %d, stderr %q, want 2 + parse error", code, stderr)
	}

	// Trace-file mode: goodput clause skips, doesn't fail.
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	writeScenarioTrace(t, trace)
	code, out, stderr = runCLI(t, "-file", trace, "-slo", "goodput>=1e9")
	if code != 0 {
		t.Errorf("skipped-only SLO should exit 0, got %d (%s)", code, stderr)
	}
	if !strings.Contains(out, "skip") {
		t.Errorf("report should mark the clause skipped:\n%s", out)
	}
}

// TestTextReportShape spot-checks the human rendering.
func TestTextReportShape(t *testing.T) {
	code, out, stderr := runCLI(t, "-seed", "1", "-fault-seed", "3", "-top", "2")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	for _, want := range []string{
		"trace analytics:", "time attribution (fleet blame):",
		"winddown", "histograms (exact percentiles):",
		"slowest 2 jobs:", "critical paths:", "fleet: goodput",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
}

// writeScenarioTrace runs the seed-1/fault-seed-3 scenario and dumps
// its raw Chrome trace via -emit-trace, for -file round trips.
func writeScenarioTrace(t *testing.T, path string) {
	t.Helper()
	code, _, stderr := runCLI(t, "-seed", "1", "-fault-seed", "3", "-emit-trace", path)
	if code != 0 {
		t.Fatalf("emit-trace exit %d: %s", code, stderr)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
