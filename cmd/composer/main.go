// Command composer composes one of the paper's host configurations and
// runs a deep-learning training job on it, printing the measured summary —
// the CLI equivalent of one cell of the paper's evaluation grid.
//
// Usage:
//
//	composer -config falconGPUs -model BERT-L -iters 30
//	composer -config localGPUs  -model ResNet-50 -precision fp32 -strategy DP
//	composer -list
package main

import (
	"flag"
	"fmt"
	"os"

	"composable/internal/core"
	"composable/internal/dlmodel"
	"composable/internal/gpu"
	"composable/internal/train"
)

func main() {
	var (
		cfgName   = flag.String("config", "localGPUs", "host configuration (Table III label)")
		modelName = flag.String("model", "ResNet-50", "benchmark (Table II name)")
		precision = flag.String("precision", "fp16", "fp16 or fp32")
		strategy  = flag.String("strategy", "DDP", "DDP or DP")
		sharded   = flag.Bool("sharded", false, "enable ZeRO-2 sharded training")
		batch     = flag.Int("batch", 0, "per-GPU batch (0 = paper default)")
		epochs    = flag.Int("epochs", 0, "epochs (0 = paper default)")
		iters     = flag.Int("iters", 30, "iterations per (scaled) epoch")
		list      = flag.Bool("list", false, "list configurations and models")
		topo      = flag.Bool("topology", false, "print chassis topology before running")
		dot       = flag.Bool("dot", false, "print the fabric as Graphviz and exit")
		csvSeries = flag.String("csv", "", "after training, dump this telemetry series as CSV (e.g. gpu_util)")
	)
	flag.Parse()

	if *list {
		fmt.Println("configurations (Table III):")
		for _, c := range core.Configs() {
			fmt.Printf("  %-12s %s\n", c.Name, c.Description())
		}
		fmt.Println("models (Table II):")
		for _, w := range dlmodel.Benchmarks() {
			fmt.Printf("  %-12s %-16s %5.1fM params, batch %d, %d epochs\n",
				w.Name, w.Domain, float64(w.Graph.Params())/1e6, w.BatchPerGPU, w.Epochs)
		}
		return
	}

	var cfg core.Config
	found := false
	for _, c := range core.Configs() {
		if c.Name == *cfgName {
			cfg, found = c, true
		}
	}
	if !found {
		fatal(fmt.Errorf("unknown configuration %q (see -list)", *cfgName))
	}
	w, err := dlmodel.BenchmarkByName(*modelName)
	if err != nil {
		fatal(err)
	}

	prec := gpu.FP16
	if *precision == "fp32" {
		prec = gpu.FP32
	}

	sys, err := core.NewSystem(cfg)
	if err != nil {
		fatal(err)
	}
	if *topo {
		fmt.Print(sys.ChassisTopology())
	}
	if *dot {
		fmt.Print(sys.Net.Dot(cfg.Name))
		return
	}

	res, err := sys.Train(train.Options{
		Workload:      w,
		Precision:     prec,
		Strategy:      train.Strategy(*strategy),
		Sharded:       *sharded,
		BatchPerGPU:   *batch,
		Epochs:        *epochs,
		ItersPerEpoch: *iters,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s on %s (%s/%v%s, batch %d/GPU)\n",
		res.Workload, res.System, res.Strategy, res.Precision, shardedTag(res.Sharded), res.BatchPerGPU)
	fmt.Printf("  total time      %v (%d iters, avg %v/iter)\n", res.TotalTime, res.Iters, res.AvgIter)
	for i, e := range res.EpochTimes {
		fmt.Printf("  epoch %-2d        %v\n", i+1, e)
	}
	fmt.Printf("  GPU util        %.1f%%   GPU mem %.1f%% (peak %v)\n",
		res.AvgGPUUtil*100, res.AvgGPUMemUtil*100, res.PeakGPUMem)
	fmt.Printf("  CPU util        %.1f%%   host mem %.1f%%\n", res.AvgCPUUtil*100, res.AvgHostMemUtil*100)
	if res.FalconPCIeGBps > 0 {
		fmt.Printf("  falcon PCIe     %.2f GB/s (slot ports, in+out)\n", res.FalconPCIeGBps)
	}
	if s := res.Recorder.Series(train.SeriesGPUUtil); s != nil && s.Len() > 0 {
		fmt.Printf("  GPU util trace  |%s|\n", s.Sparkline(60))
	}
	if *csvSeries != "" {
		s := res.Recorder.Series(*csvSeries)
		if s == nil {
			fatal(fmt.Errorf("no telemetry series %q (have %v)", *csvSeries, res.Recorder.Names()))
		}
		fmt.Print(s.CSV())
	}
}

func shardedTag(s bool) string {
	if s {
		return "+sharded"
	}
	return ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "composer:", err)
	os.Exit(1)
}
