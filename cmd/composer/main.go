// Command composer composes one of the paper's host configurations and
// runs a deep-learning training job on it, printing the measured summary —
// the CLI equivalent of one cell of the paper's evaluation grid.
//
// -config and -model accept comma-separated lists; a multi-cell grid runs
// on the parallel experiment runner with shared-run deduplication.
//
// Usage:
//
//	composer -config falconGPUs -model BERT-L -iters 30
//	composer -config localGPUs  -model ResNet-50 -precision fp32 -strategy DP
//	composer -config localGPUs,falconGPUs -model ResNet-50,BERT-L -parallel 4
//	composer -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"composable/internal/core"
	"composable/internal/dlmodel"
	"composable/internal/experiments"
	"composable/internal/gpu"
	"composable/internal/train"
)

func main() {
	var (
		cfgNames  = flag.String("config", "localGPUs", "host configuration(s), comma-separated (Table III labels)")
		modelName = flag.String("model", "ResNet-50", "benchmark(s), comma-separated (Table II names)")
		precision = flag.String("precision", "fp16", "fp16 or fp32")
		strategy  = flag.String("strategy", "DDP", "DDP or DP")
		sharded   = flag.Bool("sharded", false, "enable ZeRO-2 sharded training")
		batch     = flag.Int("batch", 0, "per-GPU batch (0 = paper default)")
		epochs    = flag.Int("epochs", 0, "epochs (0 = paper default)")
		iters     = flag.Int("iters", 30, "iterations per (scaled) epoch")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "grid worker-pool width (1 = sequential)")
		list      = flag.Bool("list", false, "list configurations and models")
		topo      = flag.Bool("topology", false, "print chassis topology before running (single cell only)")
		dot       = flag.Bool("dot", false, "print the fabric as Graphviz and exit (single cell only)")
		csvSeries = flag.String("csv", "", "after training, dump this telemetry series as CSV (e.g. gpu_util; single cell only)")
	)
	flag.Parse()

	if *list {
		fmt.Println("configurations (Table III):")
		for _, c := range core.Configs() {
			fmt.Printf("  %-12s %s\n", c.Name, c.Description())
		}
		fmt.Println("models (Table II):")
		for _, w := range dlmodel.Benchmarks() {
			fmt.Printf("  %-12s %-16s %5.1fM params, batch %d, %d epochs\n",
				w.Name, w.Domain, float64(w.Graph.Params())/1e6, w.BatchPerGPU, w.Epochs)
		}
		return
	}

	var cfgs []core.Config
	for _, name := range strings.Split(*cfgNames, ",") {
		cfgs = append(cfgs, configByName(strings.TrimSpace(name)))
	}
	var models []dlmodel.Workload
	for _, name := range strings.Split(*modelName, ",") {
		w, err := dlmodel.BenchmarkByName(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		models = append(models, w)
	}

	prec := gpu.FP16
	if *precision == "fp32" {
		prec = gpu.FP32
	}
	opts := train.Options{
		Precision:     prec,
		Strategy:      train.Strategy(*strategy),
		Sharded:       *sharded,
		BatchPerGPU:   *batch,
		Epochs:        *epochs,
		ItersPerEpoch: *iters,
	}

	if len(cfgs) == 1 && len(models) == 1 {
		runSingle(cfgs[0], models[0], opts, *topo, *dot, *csvSeries)
		return
	}
	if *topo || *dot || *csvSeries != "" {
		fatal(fmt.Errorf("-topology, -dot and -csv need a single cell (one -config, one -model)"))
	}
	runGrid(cfgs, models, opts, *parallel)
}

// runSingle is the classic one-cell path, with the system-level inspection
// surfaces (topology, Graphviz) only a directly composed system offers.
func runSingle(cfg core.Config, w dlmodel.Workload, opts train.Options, topo, dot bool, csvSeries string) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		fatal(err)
	}
	if topo {
		fmt.Print(sys.ChassisTopology())
	}
	if dot {
		fmt.Print(sys.Net.Dot(cfg.Name))
		return
	}

	opts.Workload = w
	res, err := sys.Train(opts)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s on %s (%s/%v%s, batch %d/GPU)\n",
		res.Workload, res.System, res.Strategy, res.Precision, shardedTag(res.Sharded), res.BatchPerGPU)
	fmt.Printf("  total time      %v (%d iters, avg %v/iter)\n", res.TotalTime, res.Iters, res.AvgIter)
	for i, e := range res.EpochTimes {
		fmt.Printf("  epoch %-2d        %v\n", i+1, e)
	}
	fmt.Printf("  GPU util        %.1f%%   GPU mem %.1f%% (peak %v)\n",
		res.AvgGPUUtil*100, res.AvgGPUMemUtil*100, res.PeakGPUMem)
	fmt.Printf("  CPU util        %.1f%%   host mem %.1f%%\n", res.AvgCPUUtil*100, res.AvgHostMemUtil*100)
	if res.FalconPCIeGBps > 0 {
		fmt.Printf("  falcon PCIe     %.2f GB/s (slot ports, in+out)\n", res.FalconPCIeGBps)
	}
	if s := res.Recorder.Series(train.SeriesGPUUtil); s != nil && s.Len() > 0 {
		fmt.Printf("  GPU util trace  |%s|\n", s.Sparkline(60))
	}
	if csvSeries != "" {
		s := res.Recorder.Series(csvSeries)
		if s == nil {
			fatal(fmt.Errorf("no telemetry series %q (have %v)", csvSeries, res.Recorder.Names()))
		}
		fmt.Print(s.CSV())
	}
}

// runGrid runs the config × model cross product as ad-hoc experiments on
// the parallel runner: cells sharing a training run deduplicate through
// the session, and the report order matches the requested grid order.
func runGrid(cfgs []core.Config, models []dlmodel.Workload, opts train.Options, parallelism int) {
	scale := experiments.Scale{
		Name:           "cli",
		ItersPerEpoch:  opts.ItersPerEpoch,
		MaxEpochs:      1 << 30, // grid cells keep the workloads' paper epochs
		SampleInterval: 100 * time.Millisecond,
	}
	session := experiments.NewSession(scale)

	var cells []experiments.Experiment
	for _, cfg := range cfgs {
		for _, w := range models {
			cfg, w := cfg, w
			cells = append(cells, experiments.Experiment{
				ID:    fmt.Sprintf("%s/%s", cfg.Name, w.Name),
				Title: fmt.Sprintf("%s on %s", w.Name, cfg.Name),
				Run: func(s *experiments.Session) (string, error) {
					res, err := s.RunOpts(cfg, w, opts)
					if err != nil {
						return "", err
					}
					return summarize(res), nil
				},
			})
		}
	}

	start := time.Now()
	reports, err := experiments.NewRunner(session, cells).RunAll(context.Background(), parallelism)
	wall := time.Since(start)
	failed := false
	for _, r := range reports {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "composer: %v\n", r.Err)
			failed = true
			continue
		}
		fmt.Printf("=== %s (ran in %v)\n%s", r.Title, r.Elapsed.Round(time.Millisecond), r.Output)
	}
	if err != nil || failed {
		os.Exit(1)
	}
	st := session.Stats()
	fmt.Printf("--- %d cells in %v: %d training runs, %d cache hits, %d deduplicated joins\n",
		len(reports), wall.Round(time.Millisecond), st.TrainRuns, st.CacheHits, st.Joins)
}

// summarize renders one grid cell's result compactly.
func summarize(res *train.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %s/%v%s batch %d/GPU: total %v (%d iters, avg %v/iter)\n",
		res.Strategy, res.Precision, shardedTag(res.Sharded), res.BatchPerGPU,
		res.TotalTime, res.Iters, res.AvgIter)
	fmt.Fprintf(&b, "  GPU util %.1f%%  GPU mem %.1f%%  CPU %.1f%%  host mem %.1f%%",
		res.AvgGPUUtil*100, res.AvgGPUMemUtil*100, res.AvgCPUUtil*100, res.AvgHostMemUtil*100)
	if res.FalconPCIeGBps > 0 {
		fmt.Fprintf(&b, "  falcon PCIe %.2f GB/s", res.FalconPCIeGBps)
	}
	fmt.Fprintln(&b)
	return b.String()
}

func configByName(name string) core.Config {
	for _, c := range core.Configs() {
		if c.Name == name {
			return c
		}
	}
	fatal(fmt.Errorf("unknown configuration %q (see -list)", name))
	return core.Config{}
}

func shardedTag(s bool) string {
	if s {
		return "+sharded"
	}
	return ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "composer:", err)
	os.Exit(1)
}
