// Command composer composes one of the paper's host configurations and
// runs a deep-learning training job on it, printing the measured summary —
// the CLI equivalent of one cell of the paper's evaluation grid.
//
// -config and -model accept comma-separated lists; a multi-cell grid runs
// on the parallel experiment runner with shared-run deduplication.
// -random leaves the paper grid entirely: it generates seeded random
// scenarios (internal/scengen) and runs each under the full invariant
// probe set.
//
// Usage:
//
//	composer -config falconGPUs -model BERT-L -iters 30
//	composer -config localGPUs  -model ResNet-50 -precision fp32 -strategy DP
//	composer -config localGPUs,falconGPUs -model ResNet-50,BERT-L -parallel 4
//	composer -random 42 -n 20
//	composer -list
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"composable/internal/core"
	"composable/internal/dlmodel"
	"composable/internal/experiments"
	"composable/internal/gpu"
	"composable/internal/scengen"
	"composable/internal/train"
)

func main() {
	// The CLI's only wall-clock read: everything below reports elapsed
	// time through this injected clock (the pattern mcs.Server.clock
	// established), so tests run against a fake clock and the lint
	// allowlist stays one line long.
	//lint:allow nowallclock(sole telemetry clock injection point of the composer binary)
	os.Exit(run(os.Args[1:], time.Now, os.Stdout, os.Stderr))
}

// run is the testable main: it parses args, dispatches to the list /
// random / single-cell / grid paths, and returns the process exit code.
// clock feeds the elapsed-time telemetry lines; simulation results never
// depend on it.
func run(args []string, clock func() time.Time, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("composer", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		cfgNames  = fs.String("config", "localGPUs", "host configuration(s), comma-separated (Table III labels)")
		modelName = fs.String("model", "ResNet-50", "benchmark(s), comma-separated (Table II names)")
		precision = fs.String("precision", "fp16", "fp16 or fp32")
		strategy  = fs.String("strategy", "DDP", "DDP or DP")
		sharded   = fs.Bool("sharded", false, "enable ZeRO-2 sharded training")
		batch     = fs.Int("batch", 0, "per-GPU batch (0 = paper default)")
		epochs    = fs.Int("epochs", 0, "epochs (0 = paper default)")
		iters     = fs.Int("iters", 30, "iterations per (scaled) epoch")
		parallel  = fs.Int("parallel", runtime.GOMAXPROCS(0), "grid worker-pool width (1 = sequential)")
		list      = fs.Bool("list", false, "list configurations and models")
		topo      = fs.Bool("topology", false, "print chassis topology before running (single cell only)")
		dot       = fs.Bool("dot", false, "print the fabric as Graphviz and exit (single cell only)")
		csvSeries = fs.String("csv", "", "after training, dump this telemetry series as CSV (e.g. gpu_util; single cell only)")
		randSeed  = fs.Int64("random", 0, "run seeded random scenarios from this base seed instead of the paper grid")
		randN     = fs.Int("n", 10, "with -random: number of scenarios")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	randomMode := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "random" {
			randomMode = true
		}
	})

	if *list {
		fmt.Fprintln(stdout, "configurations (Table III):")
		for _, c := range core.Configs() {
			fmt.Fprintf(stdout, "  %-12s %s\n", c.Name, c.Description())
		}
		fmt.Fprintln(stdout, "models (Table II):")
		for _, w := range dlmodel.Benchmarks() {
			fmt.Fprintf(stdout, "  %-12s %-16s %5.1fM params, batch %d, %d epochs\n",
				w.Name, w.Domain, float64(w.Graph.Params())/1e6, w.BatchPerGPU, w.Epochs)
		}
		return 0
	}

	if randomMode {
		return runRandom(*randSeed, *randN, clock, stdout, stderr)
	}

	cfgs, models, err := parseGrid(*cfgNames, *modelName)
	if err != nil {
		fmt.Fprintln(stderr, "composer:", err)
		return 1
	}

	var prec gpu.Precision
	switch *precision {
	case "fp16":
		prec = gpu.FP16
	case "fp32":
		prec = gpu.FP32
	default:
		fmt.Fprintf(stderr, "composer: unknown precision %q (fp16 or fp32)\n", *precision)
		return 1
	}
	if s := train.Strategy(*strategy); s != train.DDP && s != train.DP {
		fmt.Fprintf(stderr, "composer: unknown strategy %q (DDP or DP)\n", *strategy)
		return 1
	}
	opts := train.Options{
		Precision:     prec,
		Strategy:      train.Strategy(*strategy),
		Sharded:       *sharded,
		BatchPerGPU:   *batch,
		Epochs:        *epochs,
		ItersPerEpoch: *iters,
	}

	if len(cfgs) == 1 && len(models) == 1 {
		return runSingle(cfgs[0], models[0], opts, *topo, *dot, *csvSeries, stdout, stderr)
	}
	if *topo || *dot || *csvSeries != "" {
		fmt.Fprintln(stderr, "composer: -topology, -dot and -csv need a single cell (one -config, one -model)")
		return 1
	}
	return runGrid(cfgs, models, opts, *parallel, clock, stdout, stderr)
}

// parseGrid expands the comma-separated -config and -model lists.
func parseGrid(cfgNames, modelNames string) ([]core.Config, []dlmodel.Workload, error) {
	var cfgs []core.Config
	for _, name := range strings.Split(cfgNames, ",") {
		cfg, err := configByName(strings.TrimSpace(name))
		if err != nil {
			return nil, nil, err
		}
		cfgs = append(cfgs, cfg)
	}
	var models []dlmodel.Workload
	for _, name := range strings.Split(modelNames, ",") {
		w, err := dlmodel.BenchmarkByName(strings.TrimSpace(name))
		if err != nil {
			return nil, nil, err
		}
		models = append(models, w)
	}
	return cfgs, models, nil
}

// runRandom executes n seeded random scenarios under the invariant probe
// set — the CLI face of the TestScenarioSweep tier.
func runRandom(seed int64, n int, clock func() time.Time, stdout, stderr io.Writer) int {
	if n < 1 {
		fmt.Fprintln(stderr, "composer: -n must be at least 1")
		return 1
	}
	runErrors, violated := 0, 0
	start := clock()
	for i := 0; i < n; i++ {
		sc := scengen.FromSeed(seed + int64(i))
		o, err := scengen.Run(sc)
		if err != nil {
			fmt.Fprintf(stderr, "composer: seed %d: %v\n", sc.Seed, err)
			runErrors++
			continue
		}
		res := o.Result
		fmt.Fprintf(stdout, "seed %-6d %-70s total %12v  avg %10v/iter  gpu %5.1f%%\n",
			sc.Seed, sc.ID(), res.TotalTime, res.AvgIter, res.AvgGPUUtil*100)
		if err := o.Err(); err != nil {
			fmt.Fprintf(stderr, "composer: seed %d: %v\n", sc.Seed, err)
			violated++
		}
	}
	invariants := "held"
	if violated > 0 {
		invariants = fmt.Sprintf("violated on %d", violated)
	}
	fmt.Fprintf(stdout, "--- %d scenarios in %v, %d failed to run, invariants %s\n",
		n, clock().Sub(start).Round(time.Millisecond), runErrors, invariants)
	if runErrors > 0 || violated > 0 {
		return 1
	}
	return 0
}

// runSingle is the classic one-cell path, with the system-level inspection
// surfaces (topology, Graphviz) only a directly composed system offers.
func runSingle(cfg core.Config, w dlmodel.Workload, opts train.Options, topo, dot bool, csvSeries string, stdout, stderr io.Writer) int {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "composer:", err)
		return 1
	}
	if topo {
		fmt.Fprint(stdout, sys.ChassisTopology())
	}
	if dot {
		fmt.Fprint(stdout, sys.Net.Dot(cfg.Name))
		return 0
	}

	opts.Workload = w
	res, err := sys.Train(opts)
	if err != nil {
		fmt.Fprintln(stderr, "composer:", err)
		return 1
	}

	fmt.Fprintf(stdout, "%s on %s (%s/%v%s, batch %d/GPU)\n",
		res.Workload, res.System, res.Strategy, res.Precision, shardedTag(res.Sharded), res.BatchPerGPU)
	fmt.Fprintf(stdout, "  total time      %v (%d iters, avg %v/iter)\n", res.TotalTime, res.Iters, res.AvgIter)
	for i, e := range res.EpochTimes {
		fmt.Fprintf(stdout, "  epoch %-2d        %v\n", i+1, e)
	}
	fmt.Fprintf(stdout, "  GPU util        %.1f%%   GPU mem %.1f%% (peak %v)\n",
		res.AvgGPUUtil*100, res.AvgGPUMemUtil*100, res.PeakGPUMem)
	fmt.Fprintf(stdout, "  CPU util        %.1f%%   host mem %.1f%%\n", res.AvgCPUUtil*100, res.AvgHostMemUtil*100)
	if res.FalconPCIeGBps > 0 {
		fmt.Fprintf(stdout, "  falcon PCIe     %.2f GB/s (slot ports, in+out)\n", res.FalconPCIeGBps)
	}
	if s := res.Recorder.Series(train.SeriesGPUUtil); s != nil && s.Len() > 0 {
		fmt.Fprintf(stdout, "  GPU util trace  |%s|\n", s.Sparkline(60))
	}
	if csvSeries != "" {
		s := res.Recorder.Series(csvSeries)
		if s == nil {
			fmt.Fprintf(stderr, "composer: no telemetry series %q (have %v)\n", csvSeries, res.Recorder.Names())
			return 1
		}
		fmt.Fprint(stdout, s.CSV())
	}
	return 0
}

// runGrid runs the config × model cross product as ad-hoc experiments on
// the parallel runner: cells sharing a training run deduplicate through
// the session, and the report order matches the requested grid order.
func runGrid(cfgs []core.Config, models []dlmodel.Workload, opts train.Options, parallelism int, clock func() time.Time, stdout, stderr io.Writer) int {
	scale := experiments.Scale{
		Name:           "cli",
		ItersPerEpoch:  opts.ItersPerEpoch,
		MaxEpochs:      1 << 30, // grid cells keep the workloads' paper epochs
		SampleInterval: 100 * time.Millisecond,
	}
	session := experiments.NewSession(scale)

	var cells []experiments.Experiment
	for _, cfg := range cfgs {
		for _, w := range models {
			cfg, w := cfg, w
			cells = append(cells, experiments.Experiment{
				ID:    fmt.Sprintf("%s/%s", cfg.Name, w.Name),
				Title: fmt.Sprintf("%s on %s", w.Name, cfg.Name),
				Run: func(s *experiments.Session) (string, error) {
					res, err := s.RunOpts(cfg, w, opts)
					if err != nil {
						return "", err
					}
					return summarize(res), nil
				},
			})
		}
	}

	start := clock()
	reports, err := experiments.NewRunner(session, cells).RunAll(context.Background(), parallelism)
	wall := clock().Sub(start)
	failed := false
	for _, r := range reports {
		if r.Err != nil {
			fmt.Fprintf(stderr, "composer: %v\n", r.Err)
			failed = true
			continue
		}
		fmt.Fprintf(stdout, "=== %s (ran in %v)\n%s", r.Title, r.Elapsed.Round(time.Millisecond), r.Output)
	}
	if err != nil || failed {
		return 1
	}
	st := session.Stats()
	fmt.Fprintf(stdout, "--- %d cells in %v: %d training runs, %d cache hits, %d deduplicated joins\n",
		len(reports), wall.Round(time.Millisecond), st.TrainRuns, st.CacheHits, st.Joins)
	return 0
}

// summarize renders one grid cell's result compactly.
func summarize(res *train.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %s/%v%s batch %d/GPU: total %v (%d iters, avg %v/iter)\n",
		res.Strategy, res.Precision, shardedTag(res.Sharded), res.BatchPerGPU,
		res.TotalTime, res.Iters, res.AvgIter)
	fmt.Fprintf(&b, "  GPU util %.1f%%  GPU mem %.1f%%  CPU %.1f%%  host mem %.1f%%",
		res.AvgGPUUtil*100, res.AvgGPUMemUtil*100, res.AvgCPUUtil*100, res.AvgHostMemUtil*100)
	if res.FalconPCIeGBps > 0 {
		fmt.Fprintf(&b, "  falcon PCIe %.2f GB/s", res.FalconPCIeGBps)
	}
	fmt.Fprintln(&b)
	return b.String()
}

func configByName(name string) (core.Config, error) {
	for _, c := range core.Configs() {
		if c.Name == name {
			return c, nil
		}
	}
	return core.Config{}, fmt.Errorf("unknown configuration %q (see -list)", name)
}

func shardedTag(s bool) string {
	if s {
		return "+sharded"
	}
	return ""
}
