package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fakeClock is a deterministic stand-in for time.Now: each read advances
// one second, so elapsed-time telemetry lines are stable under test.
func fakeClock() func() time.Time {
	t := time.Unix(0, 0)
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, fakeClock(), &out, &errb)
	return code, out.String(), errb.String()
}

func TestListFlag(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"localGPUs", "falconNVMe", "ResNet-50", "BERT-L", "Table III", "Table II"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestBadFlagsRejected(t *testing.T) {
	if code, _, _ := runCLI(t, "-no-such-flag"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	code, _, stderr := runCLI(t, "-config", "notAConfig")
	if code != 1 || !strings.Contains(stderr, "unknown configuration") {
		t.Errorf("bad config: exit %d, stderr %q", code, stderr)
	}
	code, _, stderr = runCLI(t, "-model", "notAModel")
	if code != 1 || !strings.Contains(stderr, "unknown benchmark") {
		t.Errorf("bad model: exit %d, stderr %q", code, stderr)
	}
	code, _, stderr = runCLI(t, "-config", "localGPUs,falconGPUs", "-dot")
	if code != 1 || !strings.Contains(stderr, "single cell") {
		t.Errorf("multi-cell -dot: exit %d, stderr %q", code, stderr)
	}
	code, _, stderr = runCLI(t, "-precision", "fp64")
	if code != 1 || !strings.Contains(stderr, "unknown precision") {
		t.Errorf("bad precision: exit %d, stderr %q", code, stderr)
	}
	code, _, stderr = runCLI(t, "-strategy", "ddp")
	if code != 1 || !strings.Contains(stderr, "unknown strategy") {
		t.Errorf("bad strategy: exit %d, stderr %q", code, stderr)
	}
}

func TestParseGridExpansion(t *testing.T) {
	cfgs, models, err := parseGrid("localGPUs, falconGPUs", "ResNet-50,BERT-L, MobileNetV2")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 2 || len(models) != 3 {
		t.Fatalf("expanded to %d configs × %d models, want 2 × 3", len(cfgs), len(models))
	}
	if cfgs[0].Name != "localGPUs" || cfgs[1].Name != "falconGPUs" {
		t.Errorf("config order lost: %v", []string{cfgs[0].Name, cfgs[1].Name})
	}
	if models[2].Name != "MobileNetV2" {
		t.Errorf("model order lost: %s", models[2].Name)
	}
	if _, _, err := parseGrid("localGPUs,bogus", "ResNet-50"); err == nil {
		t.Error("bad config in list not rejected")
	}
}

func TestSingleCellRuns(t *testing.T) {
	code, out, stderr := runCLI(t, "-config", "hybridGPUs", "-model", "MobileNetV2", "-epochs", "1", "-iters", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"MobileNetV2 on hybridGPUs", "total time", "GPU util", "falcon PCIe"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q in:\n%s", want, out)
		}
	}
}

func TestDotModeEmitsGraphviz(t *testing.T) {
	code, out, _ := runCLI(t, "-config", "falconGPUs", "-model", "ResNet-50", "-dot")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "graph") || !strings.Contains(out, "falcon-sw") {
		t.Errorf("not Graphviz output:\n%.300s", out)
	}
}

func TestGridRunsWithDedup(t *testing.T) {
	// 2 configs × 1 model with identical options: grid order preserved,
	// summary line present.
	code, out, stderr := runCLI(t,
		"-config", "localGPUs,localNVMe", "-model", "MobileNetV2",
		"-epochs", "1", "-iters", "2", "-parallel", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	first := strings.Index(out, "MobileNetV2 on localGPUs")
	second := strings.Index(out, "MobileNetV2 on localNVMe")
	if first == -1 || second == -1 || second < first {
		t.Errorf("grid order broken:\n%s", out)
	}
	if !strings.Contains(out, "2 cells") || !strings.Contains(out, "2 training runs") {
		t.Errorf("missing runner telemetry:\n%s", out)
	}
}

func TestRandomModeRunsScenarios(t *testing.T) {
	code, out, stderr := runCLI(t, "-random", "7", "-n", "3")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if got := strings.Count(out, "seed "); got != 3 {
		t.Errorf("%d scenario lines, want 3:\n%s", got, out)
	}
	for _, want := range []string{"seed 7", "seed 8", "seed 9", "3 scenarios", "invariants held"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if code, _, _ := runCLI(t, "-random", "7", "-n", "0"); code != 1 {
		t.Error("-n 0 not rejected")
	}
	_ = stderr
}
