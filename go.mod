module composable

go 1.22
