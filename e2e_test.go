package composable_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"composable/internal/cluster"
	"composable/internal/core"
	"composable/internal/dlmodel"
	"composable/internal/experiments"
	"composable/internal/falcon"
	"composable/internal/gpu"
	"composable/internal/mcs"
	"composable/internal/sim"
	"composable/internal/train"
)

// TestEndToEndPlatform drives the whole stack the way an operator would:
// compose a Falcon-attached system, inspect it through the Management
// Center Server, train a benchmark on it, and read the monitoring surfaces
// back — one integration test across control plane, data plane and the DL
// software stack.
func TestEndToEndPlatform(t *testing.T) {
	sys, err := core.NewSystem(core.FalconGPUs())
	if err != nil {
		t.Fatal(err)
	}

	// Control plane over HTTP: the operator sees the composed inventory.
	srv := mcs.NewServer(sys.Chassis, []mcs.User{
		{Name: "op", Role: mcs.RoleAdmin, Token: "tok"},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string, into interface{}) {
		t.Helper()
		req, _ := http.NewRequest("GET", ts.URL+path, nil)
		req.Header.Set("Authorization", "Bearer tok")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(buf.Bytes(), into); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}

	var sum falcon.ResourceSummary
	get("/api/summary", &sum)
	if sum.GPUs != 8 || sum.Attached != 8 {
		t.Fatalf("summary = %+v, want 8 attached GPUs", sum)
	}

	// Train BERT-large: the headline workload.
	res, err := sys.Train(train.Options{
		Workload:      dlmodel.BERTLargeWorkload(),
		Precision:     gpu.FP16,
		Epochs:        1,
		ItersPerEpoch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FalconPCIeGBps < 40 {
		t.Fatalf("falcon traffic = %.1f GB/s, want heavy", res.FalconPCIeGBps)
	}

	// The chassis monitoring saw the training traffic.
	var traffic []falcon.PortTrafficRow
	get("/api/traffic", &traffic)
	if len(traffic) != 8 {
		t.Fatalf("traffic rows = %d", len(traffic))
	}
	var moved bool
	for _, row := range traffic {
		if row.Egress > 1<<30 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("chassis port counters did not observe the all-reduce traffic")
	}

	// Sensors reflect a fully attached chassis.
	var sensors falcon.SensorReadings
	get("/api/sensors", &sensors)
	if sensors.DrawerTempC[0] < 40 {
		t.Fatalf("drawer temp = %.1f, want loaded chassis", sensors.DrawerTempC[0])
	}
}

// TestConcurrentTenantsEndToEnd runs two tenants concurrently on a shared
// drawer and checks both complete with sensible results — the advanced-mode
// path through Start/Collect.
func TestConcurrentTenantsEndToEnd(t *testing.T) {
	env := sim.NewEnv()
	systems, ch, err := cluster.ComposeShared(env, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := ch.Summary().Attached; got != 6 {
		t.Fatalf("attached = %d, want 6", got)
	}
	var jobs []*train.Job
	for i, sys := range systems {
		job, err := train.Start(sys, train.Options{
			Workload:      dlmodel.MobileNetV2Workload(),
			Precision:     gpu.FP16,
			Epochs:        1,
			ItersPerEpoch: 6 + i, // stagger lengths
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	var prev float64
	for i, job := range jobs {
		res, err := job.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if res.Iters != 6+i {
			t.Fatalf("tenant %d iters = %d", i, res.Iters)
		}
		if res.TotalTime.Seconds() <= prev {
			// Longer jobs take longer; equal-batch tenants are isolated.
			t.Fatalf("tenant %d time %v not increasing with iters", i, res.TotalTime)
		}
		prev = res.TotalTime.Seconds()
	}
}

// TestCollectBeforeRunFails pins the Start/Collect contract.
func TestCollectBeforeRunFails(t *testing.T) {
	env := sim.NewEnv()
	sys, err := cluster.Compose(env, cluster.LocalGPUsConfig())
	if err != nil {
		t.Fatal(err)
	}
	job, err := train.Start(sys, train.Options{
		Workload: dlmodel.MobileNetV2Workload(), Precision: gpu.FP16,
		Epochs: 1, ItersPerEpoch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Collect(); err == nil {
		t.Fatal("Collect before running the environment should fail")
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := job.Collect(); err != nil {
		t.Fatal(err)
	}
}

// TestRunAllParallelEqualsSequential pins the parallel runner's headline
// guarantee: for every experiment — tables, figures, ablations and
// extensions — a parallel RunAll renders byte-identical output to a
// sequential one, because the simulation is deterministic and the session
// deduplicates rather than races shared training runs.
func TestRunAllParallelEqualsSequential(t *testing.T) {
	runAll := func(parallelism int) []experiments.Report {
		t.Helper()
		s := experiments.NewSession(experiments.Quick)
		reports, err := experiments.NewRunner(s, nil).RunAll(context.Background(), parallelism)
		if err != nil {
			t.Fatalf("RunAll(parallelism=%d): %v", parallelism, err)
		}
		return reports
	}
	seq := runAll(1)
	par := runAll(8)

	if len(seq) != len(par) {
		t.Fatalf("report counts differ: sequential %d, parallel %d", len(seq), len(par))
	}
	for i, want := range seq {
		got := par[i]
		t.Run(want.ID, func(t *testing.T) {
			if got.ID != want.ID {
				t.Fatalf("report %d out of order: sequential %s, parallel %s", i, want.ID, got.ID)
			}
			if got.Output != want.Output {
				t.Errorf("parallel output differs from sequential:\n--- sequential\n%s\n--- parallel\n%s",
					want.Output, got.Output)
			}
		})
	}
}

// TestSessionConcurrentHammer drives one shared Session from many
// goroutines requesting overlapping (config × workload) runs — the data
// race the unsynchronized cache used to have. Under -race this test is the
// regression guard; the assertions check singleflight semantics: every
// caller gets the one cached result, and each distinct key trains exactly
// once.
func TestSessionConcurrentHammer(t *testing.T) {
	s := experiments.NewSession(experiments.Quick)
	cfgs := []cluster.Config{cluster.LocalGPUsConfig(), cluster.HybridGPUsConfig()}
	workloads := []dlmodel.Workload{dlmodel.MobileNetV2Workload(), dlmodel.ResNet50Workload()}

	const goroutines = 16
	results := make([][]*train.Result, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each goroutine walks the full key grid, offset so that
			// leaders and joiners interleave.
			for i := 0; i < len(cfgs)*len(workloads); i++ {
				j := (i + g) % (len(cfgs) * len(workloads))
				cfg, w := cfgs[j%len(cfgs)], workloads[j/len(cfgs)]
				res, err := s.Run(cfg, w)
				if err != nil {
					t.Errorf("goroutine %d: %s/%s: %v", g, cfg.Name, w.Name, err)
					return
				}
				results[g] = append(results[g], res)
			}
		}()
	}
	wg.Wait()

	distinct := make(map[*train.Result]bool)
	for _, rs := range results {
		for _, r := range rs {
			distinct[r] = true
		}
	}
	if want := len(cfgs) * len(workloads); len(distinct) != want {
		t.Errorf("distinct results = %d, want %d (one per key, shared by all callers)", len(distinct), want)
	}
	st := s.Stats()
	if want := len(cfgs) * len(workloads); st.TrainRuns != want {
		t.Errorf("TrainRuns = %d, want %d: concurrent callers duplicated a run", st.TrainRuns, want)
	}
	if total := st.TrainRuns + st.CacheHits + st.Joins; total != goroutines*len(cfgs)*len(workloads) {
		t.Errorf("stats don't add up: %+v over %d requests", st, goroutines*len(cfgs)*len(workloads))
	}
}

// TestExamplesCompile is a compile-time guard that the example programs
// build; running them is exercised by the shell smoke tests in CI.
func TestExamplesCompile(t *testing.T) {
	// The examples are separate main packages; `go build ./...` covers
	// them. This test exists to document the guarantee.
	for _, ex := range []string{"quickstart", "visionsweep", "nlpopt", "storagestudy", "dynamic"} {
		_ = fmt.Sprintf("examples/%s", ex)
	}
}
