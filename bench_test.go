// Benchmarks regenerating the paper's evaluation artifacts: one testing.B
// benchmark per table and figure (README.md "Experiments"). Each benchmark runs the
// corresponding experiment end to end and reports the headline quantities
// as custom metrics, so `go test -bench . -benchmem` doubles as the
// reproduction harness:
//
//	go test -bench BenchmarkFig11 -benchtime 1x
//
// The wall-clock cost of a benchmark iteration is simulator execution time,
// not simulated training time; shapes (who wins, by what factor) are scale
// independent.
package composable_test

import (
	"context"
	"runtime"
	"testing"

	"composable/internal/cluster"
	"composable/internal/core"
	"composable/internal/dlmodel"
	"composable/internal/experiments"
	"composable/internal/gpu"
	"composable/internal/train"
	"composable/internal/units"
)

func session() *experiments.Session {
	return experiments.NewSession(experiments.Quick)
}

// BenchmarkTable1_Stack regenerates Table I (software stack manifest).
func BenchmarkTable1_Stack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(core.StackManifest()) == 0 {
			b.Fatal("empty stack manifest")
		}
	}
}

// BenchmarkTable2_Models regenerates Table II (benchmark characteristics)
// by building all five model graphs and deriving their parameters/depths.
func BenchmarkTable2_Models(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := dlmodel.TableII()
		if len(rows) != 5 {
			b.Fatal("expected 5 benchmarks")
		}
	}
	rows := dlmodel.TableII()
	b.ReportMetric(float64(rows[4].Params)/1e6, "BERT-L-Mparams")
}

// BenchmarkTable3_Configs regenerates Table III by composing all five host
// configurations.
func BenchmarkTable3_Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cfg := range cluster.TableIIIConfigs() {
			sys, err := core.NewSystem(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if len(sys.GPUs) == 0 {
				b.Fatal("no GPUs composed")
			}
		}
	}
}

// BenchmarkTable4_P2P regenerates Table IV (GPU-GPU bandwidth/latency).
func BenchmarkTable4_P2P(b *testing.B) {
	var rows []float64
	for i := 0; i < b.N; i++ {
		res, err := core.P2PBenchmark(units.GB)
		if err != nil {
			b.Fatal(err)
		}
		rows = []float64{res[0].BidirBandwidth.GB(), res[1].BidirBandwidth.GB(), res[2].BidirBandwidth.GB()}
	}
	b.ReportMetric(rows[0], "L-L-GBps")
	b.ReportMetric(rows[1], "F-L-GBps")
	b.ReportMetric(rows[2], "F-F-GBps")
}

// BenchmarkFig9_UtilPatterns regenerates the GPU-utilization pattern panels.
func BenchmarkFig9_UtilPatterns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9(session()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10_GPUMetrics regenerates the per-configuration GPU metrics.
func BenchmarkFig10_GPUMetrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure10(session()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11_SwitchingOverhead regenerates the PCIe-switching overhead
// chart and reports the headline number: BERT-large's slowdown on
// Falcon-attached GPUs (paper: ≈ +100%).
func BenchmarkFig11_SwitchingOverhead(b *testing.B) {
	var bertL float64
	for i := 0; i < b.N; i++ {
		data, err := experiments.Figure11Data(session())
		if err != nil {
			b.Fatal(err)
		}
		bertL = data["BERT-L"]["falconGPUs"]
	}
	b.ReportMetric(bertL, "BERT-L-falcon-%slower")
}

// BenchmarkFig12_PCIeTraffic regenerates the Falcon port-traffic chart and
// reports BERT-large's rate (paper: 76.43 GB/s).
func BenchmarkFig12_PCIeTraffic(b *testing.B) {
	var bertL float64
	for i := 0; i < b.N; i++ {
		data, err := experiments.Figure12Data(session())
		if err != nil {
			b.Fatal(err)
		}
		bertL = data["BERT-L"]["falconGPUs"]
	}
	b.ReportMetric(bertL, "BERT-L-GBps")
}

// BenchmarkFig13_CPUUtil regenerates the CPU-utilization chart.
func BenchmarkFig13_CPUUtil(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure13(session()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14_SysMem regenerates the system-memory chart.
func BenchmarkFig14_SysMem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure14(session()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15_Storage regenerates the storage-configuration chart and
// reports BERT-large's NVMe gain.
func BenchmarkFig15_Storage(b *testing.B) {
	var bertL float64
	for i := 0; i < b.N; i++ {
		data, err := experiments.Figure15Data(session())
		if err != nil {
			b.Fatal(err)
		}
		bertL = data["BERT-L"]["localNVMe"]
	}
	b.ReportMetric(bertL, "BERT-L-localNVMe-%change")
}

// BenchmarkFig16_SoftOpt regenerates the software-optimization study and
// reports the FP16-vs-FP32 speedup on Falcon GPUs (paper: >70%).
func BenchmarkFig16_SoftOpt(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure16Data(session())
		if err != nil {
			b.Fatal(err)
		}
		var fp32, fp16 float64
		for _, r := range rows {
			if r.Config == "falconGPUs" {
				switch r.Label {
				case "DDP-FP32":
					fp32 = r.PerSampleMs
				case "DDP-FP16":
					fp16 = r.PerSampleMs
				}
			}
		}
		speedup = (fp32/fp16 - 1) * 100
	}
	b.ReportMetric(speedup, "falcon-FP16-%speedup")
}

// BenchmarkTrainIteration measures raw simulator throughput: how fast the
// engine simulates one ResNet-50 DDP iteration on eight GPUs (a simulator
// performance benchmark, not a paper artifact).
func BenchmarkTrainIteration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(core.LocalGPUs())
		if err != nil {
			b.Fatal(err)
		}
		_, err = sys.Train(trainOptsQuick())
		if err != nil {
			b.Fatal(err)
		}
	}
}

func trainOptsQuick() train.Options {
	return train.Options{
		Workload:      dlmodel.ResNet50Workload(),
		Precision:     gpu.FP16,
		Epochs:        1,
		ItersPerEpoch: 8,
	}
}

// Ablation/extension benchmarks (A1–A4, X1–X2): run the studies beyond the
// paper's figures; see README.md "Beyond the paper".
func BenchmarkAblationsAndExtensions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := session()
		for _, e := range experiments.Extensions() {
			if _, err := e.Run(s); err != nil {
				b.Fatalf("%s: %v", e.ID, err)
			}
		}
	}
}

// benchRunAll regenerates the full suite (tables, figures, ablations and
// extensions) on a fresh session per iteration at the given worker-pool
// width, so the Sequential/Parallel pair below measures the runner's
// speedup end to end:
//
//	go test -bench 'BenchmarkRunAll' -benchtime 3x
func benchRunAll(b *testing.B, parallelism int) {
	b.Helper()
	var runs int
	for i := 0; i < b.N; i++ {
		s := session()
		reports, err := experiments.NewRunner(s, nil).RunAll(context.Background(), parallelism)
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) == 0 {
			b.Fatal("no reports")
		}
		runs = s.Stats().TrainRuns
	}
	b.ReportMetric(float64(runs), "train-runs")
}

// BenchmarkRunAllSequential is the one-worker baseline.
func BenchmarkRunAllSequential(b *testing.B) { benchRunAll(b, 1) }

// BenchmarkRunAllParallel runs the same suite on a pool at least four
// wide; its ns/op against the sequential baseline is the runner's speedup,
// and the identical train-runs metric shows deduplication held under
// concurrency.
func BenchmarkRunAllParallel(b *testing.B) {
	parallelism := runtime.GOMAXPROCS(0)
	if parallelism < 4 {
		parallelism = 4
	}
	benchRunAll(b, parallelism)
}
